(* Guest-level tests: images, boot behaviour under contention, idle
   background load, and frontend bring-up paths. *)

module Engine = Lightvm_sim.Engine
module Cpu = Lightvm_sim.Cpu
module Xen = Lightvm_hv.Xen
module Domain = Lightvm_hv.Domain
module Image = Lightvm_guest.Image
module Guest = Lightvm_guest.Guest
module Ctrl = Lightvm_guest.Ctrl
module Device = Lightvm_guest.Device
module Mode = Lightvm_toolstack.Mode
module Toolstack = Lightvm_toolstack.Toolstack
module Create = Lightvm_toolstack.Create

let in_sim f () = ignore (Engine.run f)

(* ------------------------------------------------------------------ *)
(* Images *)

let test_image_catalogue () =
  (* Paper numbers embedded in the image catalogue. *)
  Alcotest.(check (float 0.01)) "daytime disk" 0.48
    Image.daytime.Image.disk_mb;
  Alcotest.(check (float 0.01)) "daytime mem" 3.6 Image.daytime.Image.mem_mb;
  Alcotest.(check (float 0.01)) "minipython mem" 8.
    Image.minipython.Image.mem_mb;
  Alcotest.(check (float 1.)) "debian mem" 111. Image.debian.Image.mem_mb;
  Alcotest.(check bool) "unikernels have no idle load" true
    (Image.idle_load Image.daytime = 0.);
  Alcotest.(check bool) "debian idles hardest" true
    (Image.idle_load Image.debian > Image.idle_load Image.tinyx);
  List.iter
    (fun img ->
      Alcotest.(check (option string))
        ("find " ^ img.Image.name)
        (Some img.Image.name)
        (Option.map (fun i -> i.Image.name) (Image.find img.Image.name)))
    Image.all

let test_image_inflation () =
  let fat = Image.with_inflated_image Image.daytime ~extra_mb:100. in
  Alcotest.(check (float 0.01)) "kernel grows" 100.48 fat.Image.kernel_mb;
  Alcotest.(check (float 1e-9)) "boot work unchanged"
    (Image.boot_work Image.daytime)
    (Image.boot_work fat)

(* ------------------------------------------------------------------ *)
(* Boot under contention *)

let boot_one ts image =
  let cfg = Lightvm_toolstack.Vmconfig.for_image ~name:"probe" image in
  let created = Toolstack.create_vm_exn ts cfg in
  Guest.wait_ready created.Create.guest;
  (created, Guest.boot_time created.Create.guest)

let test_boot_stretches_under_load =
  in_sim (fun () ->
      let xen = Xen.boot () in
      let ts = Toolstack.make ~xen ~mode:Mode.lightvm () in
      (* Saturate every guest core with busy loops. *)
      List.iter
        (fun core ->
          Engine.spawn ~name:"hog" (fun () ->
              for _ = 1 to 10_000 do
                Cpu.consume (Xen.cpu xen) ~core 0.01
              done))
        (Xen.guest_cores xen);
      Engine.sleep 0.001;
      let _, loaded_boot = boot_one ts Image.daytime in
      (* An unloaded host for comparison. *)
      let xen2 = Xen.boot () in
      let ts2 = Toolstack.make ~xen:xen2 ~mode:Mode.lightvm () in
      let _, idle_boot = boot_one ts2 Image.daytime in
      Alcotest.(check bool)
        (Printf.sprintf "boot stretches with contention (%.1f vs %.1f ms)"
           (loaded_boot *. 1e3) (idle_boot *. 1e3))
        true
        (loaded_boot > 1.4 *. idle_boot))

let test_idle_load_consumes_cpu =
  in_sim (fun () ->
      let xen = Xen.boot () in
      let ts = Toolstack.make ~xen ~mode:Mode.lightvm () in
      let cfg =
        Lightvm_toolstack.Vmconfig.for_image ~name:"idler" Image.debian
      in
      let created = Toolstack.create_vm_exn ts cfg in
      Guest.wait_ready created.Create.guest;
      Cpu.reset_stats (Xen.cpu xen);
      let t0 = Engine.now () in
      Engine.sleep 10.;
      let util = Cpu.utilization (Xen.cpu xen) ~since:t0 in
      (* One idle Debian ~0.1% of a core = 0.025% of the machine. *)
      Alcotest.(check bool)
        (Printf.sprintf "idle debian load %.4f%%" (util *. 100.))
        true
        (util > 0.0001 && util < 0.001);
      (* Shutting the guest down stops the load. *)
      Guest.shutdown created.Create.guest;
      Engine.sleep 0.5;
      Cpu.reset_stats (Xen.cpu xen);
      let t1 = Engine.now () in
      Engine.sleep 5.;
      Alcotest.(check (float 1e-9)) "no load after shutdown" 0.
        (Cpu.utilization (Xen.cpu xen) ~since:t1))

let test_boot_time_accessor =
  in_sim (fun () ->
      let xen = Xen.boot () in
      let ts = Toolstack.make ~xen ~mode:Mode.lightvm () in
      let created, boot_time = boot_one ts Image.daytime in
      Alcotest.(check bool) "positive" true (boot_time > 0.);
      Alcotest.(check bool) "booted" true
        (Guest.booted created.Create.guest);
      (* vif + the noxs sysctl pseudo-device *)
      Alcotest.(check int) "devices connected" 2
        (List.length (Guest.devices created.Create.guest)))

let test_noxs_vs_xenbus_boot_cost =
  (* The same guest boots faster under noxs than via the XenStore. *)
  in_sim (fun () ->
      let boot_under mode =
        let xen = Xen.boot () in
        let ts = Toolstack.make ~xen ~mode () in
        snd (boot_one ts Image.daytime)
      in
      let xs = boot_under Mode.chaos_xs in
      let noxs = boot_under Mode.chaos_noxs in
      Alcotest.(check bool)
        (Printf.sprintf "noxs boot faster (%.2f vs %.2f ms)" (noxs *. 1e3)
           (xs *. 1e3))
        true
        (noxs < xs))

(* ------------------------------------------------------------------ *)
(* Control pages *)

let test_ctrl_rendezvous =
  in_sim (fun () ->
      let ctrl = Ctrl.create () in
      let page = Ctrl.register ctrl ~backend_domid:0 ~grant_ref:9
          ~mac:"00:16:3e:00:00:01" in
      Alcotest.(check string) "mac" "00:16:3e:00:00:01" (Ctrl.mac page);
      let woke = ref false in
      Engine.spawn (fun () ->
          Ctrl.await_connected page;
          woke := true);
      Engine.sleep 0.001;
      Alcotest.(check bool) "still waiting" false !woke;
      Ctrl.set_back_state page Ctrl.Connected;
      Engine.sleep 0.001;
      Alcotest.(check bool) "woken on connect" true !woke;
      Alcotest.(check (option int)) "found by grant" (Some 9)
        (Option.map (fun _ -> 9) (Ctrl.find ctrl ~backend_domid:0
                                    ~grant_ref:9));
      Ctrl.unregister ctrl ~backend_domid:0 ~grant_ref:9;
      Alcotest.(check bool) "unregistered" true
        (Ctrl.find ctrl ~backend_domid:0 ~grant_ref:9 = None))

(* ------------------------------------------------------------------ *)
(* Devices *)

let test_device_paths () =
  let vif = Device.vif ~devid:0 () in
  Alcotest.(check string) "frontend dir" "/local/domain/5/device/vif/0"
    (Device.frontend_dir ~domid:5 vif);
  Alcotest.(check string) "backend dir" "/local/domain/0/backend/vif/5/0"
    (Device.backend_dir ~domid:5 vif);
  let vbd = Device.vbd ~devid:1 () in
  Alcotest.(check string) "vbd backend" "/local/domain/0/backend/vbd/5/1"
    (Device.backend_dir ~domid:5 vbd)

let test_resume_single_idle_loop =
  (* A suspend/resume cycle must not leave two idle loops running. *)
  in_sim (fun () ->
      let xen = Xen.boot () in
      let ts = Toolstack.make ~xen ~mode:Mode.lightvm () in
      let cfg =
        Lightvm_toolstack.Vmconfig.for_image ~name:"cycled" Image.tinyx
      in
      let created = Toolstack.create_vm_exn ts cfg in
      Guest.wait_ready created.Create.guest;
      let guest = created.Create.guest in
      let measure () =
        Cpu.reset_stats (Xen.cpu xen);
        let t0 = Engine.now () in
        Engine.sleep 20.;
        Cpu.utilization (Xen.cpu xen) ~since:t0
      in
      let before = measure () in
      (* Mid-tick suspend, immediate resume: a naive implementation
         leaves the old sleeping loop alive alongside the new one. *)
      Guest.shutdown guest;
      Guest.resume guest;
      let after = measure () in
      (* Stop the guest so the simulation can drain. *)
      Guest.shutdown guest;
      Alcotest.(check bool)
        (Printf.sprintf "idle load unchanged after cycle (%.5f vs %.5f)"
           before after)
        true
        (Float.abs (after -. before) < 0.3 *. before))

let suites =
  [
    ( "guest.image",
      [
        Alcotest.test_case "catalogue" `Quick test_image_catalogue;
        Alcotest.test_case "inflation" `Quick test_image_inflation;
      ] );
    ( "guest.boot",
      [
        Alcotest.test_case "stretches under load" `Quick
          test_boot_stretches_under_load;
        Alcotest.test_case "idle load" `Quick test_idle_load_consumes_cpu;
        Alcotest.test_case "boot time accessor" `Quick
          test_boot_time_accessor;
        Alcotest.test_case "noxs faster than xenbus" `Quick
          test_noxs_vs_xenbus_boot_cost;
        Alcotest.test_case "single idle loop after resume" `Quick
          test_resume_single_idle_loop;
      ] );
    ( "guest.ctrl",
      [ Alcotest.test_case "rendezvous" `Quick test_ctrl_rendezvous ] );
    ( "guest.device",
      [ Alcotest.test_case "paths" `Quick test_device_paths ] );
  ]
