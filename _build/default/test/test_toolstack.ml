(* Integration tests: config parsing, the full VM creation pipeline in
   every toolstack mode, shell pools, checkpointing and migration. *)

module Engine = Lightvm_sim.Engine
module Xen = Lightvm_hv.Xen
module Domain = Lightvm_hv.Domain
module Image = Lightvm_guest.Image
module Guest = Lightvm_guest.Guest
module Vmconfig = Lightvm_toolstack.Vmconfig
module Mode = Lightvm_toolstack.Mode
module Costs = Lightvm_toolstack.Costs
module Create = Lightvm_toolstack.Create
module Pool = Lightvm_toolstack.Pool
module Toolstack = Lightvm_toolstack.Toolstack
module Checkpoint = Lightvm_toolstack.Checkpoint
module Migrate = Lightvm_toolstack.Migrate

let in_sim f () = ignore (Engine.run f)

(* ------------------------------------------------------------------ *)
(* Vmconfig *)

let sample_config =
  {|
# a daytime guest
name = "daytime-1"
kernel = "daytime"
memory = 4
vcpus = 1
vif = ['bridge=xenbr0']
disk = ['ramdisk,xvda,w']
on_crash = "destroy"
custom_key = "custom value"
|}

let test_config_parse () =
  match Vmconfig.parse sample_config with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok cfg ->
      Alcotest.(check string) "name" "daytime-1" cfg.Vmconfig.name;
      Alcotest.(check string) "kernel" "daytime" cfg.Vmconfig.kernel;
      Alcotest.(check (float 1e-9)) "memory" 4. cfg.Vmconfig.memory_mb;
      Alcotest.(check int) "vcpus" 1 cfg.Vmconfig.vcpus;
      Alcotest.(check (list string)) "vifs" [ "bridge=xenbr0" ]
        cfg.Vmconfig.vifs;
      Alcotest.(check (list string))
        "disks (commas inside quotes survive)" [ "ramdisk,xvda,w" ]
        cfg.Vmconfig.disks;
      Alcotest.(check (list (pair string string)))
        "extra keys preserved"
        [ ("custom_key", "custom value") ]
        cfg.Vmconfig.extra;
      Alcotest.(check int) "two devices" 2
        (List.length (Vmconfig.devices cfg))

let test_config_errors () =
  let expect_error text =
    match Vmconfig.parse text with
    | Ok _ -> Alcotest.failf "accepted bad config: %s" text
    | Error _ -> ()
  in
  expect_error "kernel = \"daytime\"\n";
  expect_error "name = \"x\"\n";
  expect_error "name = \"x\"\nkernel = \"k\"\nmemory = \"notanumber\"\n";
  expect_error "name = \"x\"\nkernel = \"k\"\nvif = [unquoted]\n";
  expect_error "name = \"x\"\nkernel = \"k\"\nbroken line\n"

let test_config_roundtrip () =
  match Vmconfig.parse sample_config with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok cfg -> (
      match Vmconfig.parse (Vmconfig.to_string cfg) with
      | Error msg -> Alcotest.failf "re-parse failed: %s" msg
      | Ok cfg2 ->
          Alcotest.(check bool) "round trip" true (cfg = cfg2))

let prop_config_roundtrip =
  let name_gen =
    QCheck.Gen.(
      map
        (fun s -> "g" ^ s)
        (string_size ~gen:(char_range 'a' 'z') (int_range 1 12)))
  in
  QCheck.Test.make ~name:"vmconfig to_string/parse round-trips" ~count:100
    (QCheck.make
       QCheck.Gen.(
         quad name_gen (int_range 1 512) (int_range 1 4) (int_range 0 3)))
    (fun (name, mem, vcpus, nics) ->
      let cfg =
        Vmconfig.make ~memory_mb:(float_of_int mem) ~vcpus
          ~vifs:(List.init nics (fun i -> Printf.sprintf "bridge=br%d" i))
          ~name ~kernel:"daytime" ()
      in
      Vmconfig.parse (Vmconfig.to_string cfg) = Ok cfg)

let test_config_comment_in_string () =
  match Vmconfig.parse "name = \"has#hash\"\nkernel = \"daytime\"\n" with
  | Ok cfg -> Alcotest.(check string) "hash kept" "has#hash" cfg.Vmconfig.name
  | Error msg -> Alcotest.failf "parse failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Full creation pipeline *)

let make_host ?(mode = Mode.xl) ?platform () =
  let xen =
    match platform with
    | Some platform -> Xen.boot ~platform ()
    | None -> Xen.boot ()
  in
  Toolstack.make ~xen ~mode ()

let daytime_cfg ?(name = "guest-a") () =
  Vmconfig.for_image ~name Image.daytime

let test_create_mode mode =
  in_sim (fun () ->
      let ts = make_host ~mode () in
      let created = Toolstack.create_vm_exn ts (daytime_cfg ()) in
      Guest.wait_ready created.Create.guest;
      (* The VM is running with its devices connected. *)
      let dom =
        match Xen.domain (Toolstack.xen ts) ~domid:created.Create.domid with
        | Some dom -> dom
        | None -> Alcotest.fail "domain missing"
      in
      Alcotest.(check bool) "running" true (Domain.is_running dom);
      Alcotest.(check string) "named" "guest-a" (Domain.name dom);
      let vifs =
        List.filter
          (fun d ->
            d.Lightvm_guest.Device.kind = Lightvm_guest.Device.Vif)
          created.Create.devices
      in
      Alcotest.(check int) "one vif" 1 (List.length vifs);
      Alcotest.(check bool) "create time positive" true
        (created.Create.create_time > 0.);
      Alcotest.(check bool) "boot completed" true
        (Guest.booted created.Create.guest);
      Alcotest.(check bool)
        (Printf.sprintf "create sane for %s: %.1fms" (Mode.name mode)
           (created.Create.create_time *. 1000.))
        true
        (created.Create.create_time < 1.0);
      Toolstack.destroy_vm ts created;
      Alcotest.(check int) "no vms left" 0 (Toolstack.vm_count ts);
      (* Let the chaos daemon finish any background shell refills, then
         only pool shells (split modes) may remain as domains. *)
      Engine.sleep 2.0;
      Alcotest.(check int) "only dom0 and shells remain"
        (Toolstack.shell_count ts)
        (Xen.guest_count (Toolstack.xen ts)))

let test_create_time_ordering =
  (* xl must be slowest; LightVM fastest. *)
  in_sim (fun () ->
      let time_for mode =
        let ts = make_host ~mode () in
        (* Warm the pool so split mode measures the execute phase. *)
        Toolstack.prefill_pool ts (daytime_cfg ());
        let created = Toolstack.create_vm_exn ts (daytime_cfg ()) in
        Guest.wait_ready created.Create.guest;
        created.Create.create_time
      in
      let t_xl = time_for Mode.xl in
      let t_chaos = time_for Mode.chaos_xs in
      let t_noxs = time_for Mode.chaos_noxs in
      let t_lightvm = time_for Mode.lightvm in
      let msg =
        Printf.sprintf "xl=%.1fms chaos=%.1fms noxs=%.1fms lightvm=%.2fms"
          (t_xl *. 1e3) (t_chaos *. 1e3) (t_noxs *. 1e3) (t_lightvm *. 1e3)
      in
      Alcotest.(check bool) ("xl slowest: " ^ msg) true
        (t_xl > t_chaos && t_chaos > t_noxs && t_noxs > t_lightvm);
      (* Order-of-magnitude targets from Fig 9. *)
      Alcotest.(check bool) ("xl ~100ms: " ^ msg) true
        (t_xl > 0.05 && t_xl < 0.3);
      Alcotest.(check bool) ("lightvm few ms: " ^ msg) true
        (t_lightvm < 0.01))

let test_breakdown_accounts_time =
  in_sim (fun () ->
      let ts = make_host ~mode:Mode.xl () in
      let created = Toolstack.create_vm_exn ts (daytime_cfg ()) in
      let b = created.Create.breakdown in
      let total = Create.breakdown_total b in
      Alcotest.(check bool) "categories sum close to create time" true
        (Float.abs (total -. created.Create.create_time)
        < 0.2 *. created.Create.create_time);
      (* Devices (hotplug scripts) dominate for xl at low density. *)
      Alcotest.(check bool) "devices large" true
        (Create.breakdown_get b Create.Cat_devices
        > 0.3 *. total))

let test_min_memory_floor =
  in_sim (fun () ->
      (* Without the patch the toolstack rounds 3.6 MB up to 4 MB. *)
      let ts = make_host ~mode:Mode.xl () in
      let created = Toolstack.create_vm_exn ts (daytime_cfg ()) in
      Guest.wait_ready created.Create.guest;
      let kb =
        Xen.domain_mem_kb (Toolstack.xen ts) ~domid:created.Create.domid
      in
      Alcotest.(check bool)
        (Printf.sprintf "at least 4MB (%d kb)" kb)
        true (kb >= 4096);
      (* With the patch, 3.6 MB runs as 3.6 MB. *)
      let ts2 = make_host ~mode:Mode.chaos_noxs () in
      let created2 = Toolstack.create_vm_exn ts2 (daytime_cfg ()) in
      Guest.wait_ready created2.Create.guest;
      let kb2 =
        Xen.domain_mem_kb (Toolstack.xen ts2) ~domid:created2.Create.domid
      in
      Alcotest.(check bool)
        (Printf.sprintf "under 4MB+overhead (%d kb)" kb2)
        true
        (kb2 < 4096))

let test_create_from_config_text =
  in_sim (fun () ->
      let ts = make_host ~mode:Mode.chaos_xs () in
      let cfg = daytime_cfg () in
      let text = Vmconfig.to_string cfg in
      let created = Toolstack.create_vm_exn ts ~config_text:text cfg in
      Guest.wait_ready created.Create.guest;
      Alcotest.(check string) "name from text" "guest-a"
        created.Create.vm_name)

let test_create_bad_kernel =
  in_sim (fun () ->
      let ts = make_host ~mode:Mode.chaos_xs () in
      let cfg = Vmconfig.make ~name:"x" ~kernel:"no-such-kernel" () in
      match Toolstack.create_vm ts cfg with
      | Error msg ->
          Alcotest.(check bool) "mentions kernel" true
            (String.length msg > 0)
      | Ok _ -> Alcotest.fail "bad kernel accepted")

let test_duplicate_names_rejected_xl =
  in_sim (fun () ->
      let ts = make_host ~mode:Mode.xl () in
      let c1 = Toolstack.create_vm_exn ts (daytime_cfg ~name:"dup" ()) in
      Guest.wait_ready c1.Create.guest;
      match Toolstack.create_vm ts (daytime_cfg ~name:"dup" ()) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "duplicate name accepted")

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_basics =
  in_sim (fun () ->
      let built = ref 0 in
      let pool =
        Pool.create ~target:3 ~make:(fun () ->
            incr built;
            Engine.sleep 0.010;
            !built)
      in
      Pool.prefill pool;
      Alcotest.(check int) "prefilled" 3 (Pool.size pool);
      let t0 = Engine.now () in
      let shell = Pool.take pool in
      Alcotest.(check int) "fifo" 1 shell;
      Alcotest.(check bool) "take is instant" true (Engine.now () = t0);
      (* Background refill tops the pool back up. *)
      Engine.sleep 0.1;
      Alcotest.(check int) "refilled" 3 (Pool.size pool))

let test_pool_empty_fallback =
  in_sim (fun () ->
      let pool =
        Pool.create ~target:2 ~make:(fun () ->
            Engine.sleep 0.005;
            ())
      in
      (* Never prefilled: falls back to synchronous builds. *)
      let t0 = Engine.now () in
      Pool.take pool;
      Alcotest.(check bool) "paid for the build" true
        (Engine.now () -. t0 >= 0.005))

let test_split_uses_pool =
  in_sim (fun () ->
      let ts = make_host ~mode:Mode.lightvm () in
      let cfg = daytime_cfg () in
      Toolstack.prefill_pool ts cfg;
      let with_pool = (Toolstack.create_vm_exn ts cfg).Create.create_time in
      (* A fresh host without prefilling pays prepare inline on first
         create. *)
      let ts2 = make_host ~mode:Mode.chaos_noxs () in
      let without =
        (Toolstack.create_vm_exn ts2 (daytime_cfg ())).Create.create_time
      in
      Alcotest.(check bool)
        (Printf.sprintf "split faster (%.2fms vs %.2fms)"
           (with_pool *. 1e3) (without *. 1e3))
        true (with_pool < without))

(* ------------------------------------------------------------------ *)
(* Checkpoint and migrate *)

let test_save_restore =
  in_sim (fun () ->
      let ts = make_host ~mode:Mode.lightvm () in
      let created = Toolstack.create_vm_exn ts (daytime_cfg ()) in
      Guest.wait_ready created.Create.guest;
      let t0 = Engine.now () in
      let saved = Checkpoint.save ts created in
      let t_save = Engine.now () -. t0 in
      Alcotest.(check int) "gone after save" (Toolstack.shell_count ts)
        (Xen.guest_count (Toolstack.xen ts));
      Alcotest.(check string) "saved name" "guest-a"
        (Checkpoint.saved_name saved);
      let t1 = Engine.now () in
      let restored = Checkpoint.restore ts saved in
      Guest.wait_ready restored.Create.guest;
      let t_restore = Engine.now () -. t1 in
      Alcotest.(check int) "back after restore"
        (1 + Toolstack.shell_count ts)
        (Xen.guest_count (Toolstack.xen ts));
      Alcotest.(check bool)
        (Printf.sprintf "LightVM save ~30ms (%.1fms)" (t_save *. 1e3))
        true
        (t_save > 0.015 && t_save < 0.06);
      Alcotest.(check bool)
        (Printf.sprintf "LightVM restore ~20ms (%.1fms)" (t_restore *. 1e3))
        true
        (t_restore > 0.008 && t_restore < 0.05))

let test_save_restore_xl_slower =
  in_sim (fun () ->
      let run mode =
        let ts = make_host ~mode () in
        let created = Toolstack.create_vm_exn ts (daytime_cfg ()) in
        Guest.wait_ready created.Create.guest;
        let t0 = Engine.now () in
        let saved = Checkpoint.save ts created in
        let t_save = Engine.now () -. t0 in
        let t1 = Engine.now () in
        let restored = Checkpoint.restore ts saved in
        Guest.wait_ready restored.Create.guest;
        (t_save, Engine.now () -. t1)
      in
      let xl_save, xl_restore = run Mode.xl in
      let lv_save, lv_restore = run Mode.lightvm in
      Alcotest.(check bool)
        (Printf.sprintf "saves: xl %.0fms vs lightvm %.0fms"
           (xl_save *. 1e3) (lv_save *. 1e3))
        true
        (xl_save > 2. *. lv_save);
      Alcotest.(check bool)
        (Printf.sprintf "restores: xl %.0fms vs lightvm %.0fms"
           (xl_restore *. 1e3) (lv_restore *. 1e3))
        true
        (xl_restore > 5. *. lv_restore))

let test_migrate =
  in_sim (fun () ->
      let src = make_host ~mode:Mode.lightvm () in
      let dst = make_host ~mode:Mode.lightvm () in
      let created = Toolstack.create_vm_exn src (daytime_cfg ()) in
      Guest.wait_ready created.Create.guest;
      let resumed, stats = Migrate.migrate ~src ~dst created in
      Guest.wait_ready resumed.Create.guest;
      Alcotest.(check int) "source empty" (Toolstack.shell_count src)
        (Xen.guest_count (Toolstack.xen src));
      Alcotest.(check int) "destination has it"
        (1 + Toolstack.shell_count dst)
        (Xen.guest_count (Toolstack.xen dst));
      Alcotest.(check string) "same name" "guest-a" resumed.Create.vm_name;
      Alcotest.(check bool)
        (Printf.sprintf "LightVM migration ~60ms (%.1fms)"
           (stats.Migrate.total *. 1e3))
        true
        (stats.Migrate.total > 0.03 && stats.Migrate.total < 0.12);
      Alcotest.(check bool) "transfer part accounted" true
        (stats.Migrate.transfer > 0.))

let suites =
  [
    ( "toolstack.vmconfig",
      [
        Alcotest.test_case "parse" `Quick test_config_parse;
        Alcotest.test_case "errors" `Quick test_config_errors;
        Alcotest.test_case "round trip" `Quick test_config_roundtrip;
        Alcotest.test_case "hash in string" `Quick
          test_config_comment_in_string;
        QCheck_alcotest.to_alcotest prop_config_roundtrip;
      ] );
    ( "toolstack.create",
      [
        Alcotest.test_case "xl mode" `Quick (test_create_mode Mode.xl);
        Alcotest.test_case "chaos [XS]" `Quick
          (test_create_mode Mode.chaos_xs);
        Alcotest.test_case "chaos [XS+split]" `Quick
          (test_create_mode Mode.chaos_xs_split);
        Alcotest.test_case "chaos [NoXS]" `Quick
          (test_create_mode Mode.chaos_noxs);
        Alcotest.test_case "LightVM" `Quick (test_create_mode Mode.lightvm);
        Alcotest.test_case "mode ordering" `Quick test_create_time_ordering;
        Alcotest.test_case "breakdown" `Quick test_breakdown_accounts_time;
        Alcotest.test_case "4MB floor" `Quick test_min_memory_floor;
        Alcotest.test_case "create from text" `Quick
          test_create_from_config_text;
        Alcotest.test_case "bad kernel" `Quick test_create_bad_kernel;
        Alcotest.test_case "duplicate names (xl)" `Quick
          test_duplicate_names_rejected_xl;
      ] );
    ( "toolstack.pool",
      [
        Alcotest.test_case "basics" `Quick test_pool_basics;
        Alcotest.test_case "empty fallback" `Quick test_pool_empty_fallback;
        Alcotest.test_case "split uses pool" `Quick test_split_uses_pool;
      ] );
    ( "toolstack.checkpoint",
      [
        Alcotest.test_case "save/restore" `Quick test_save_restore;
        Alcotest.test_case "xl slower" `Quick test_save_restore_xl_slower;
        Alcotest.test_case "migrate" `Quick test_migrate;
      ] );
  ]
