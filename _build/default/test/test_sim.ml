(* Tests for the discrete-event engine, resources and the CPU model. *)

module Engine = Lightvm_sim.Engine
module Heap = Lightvm_sim.Heap
module Rng = Lightvm_sim.Rng
module Resource = Lightvm_sim.Resource
module Cpu = Lightvm_sim.Cpu

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_time name expected actual =
  if not (feq expected actual) then
    Alcotest.failf "%s: expected %g, got %g" name expected actual

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_order () =
  let h = Heap.create () in
  ignore (Heap.push h ~time:3.0 "c");
  ignore (Heap.push h ~time:1.0 "a");
  ignore (Heap.push h ~time:2.0 "b");
  let order = List.init 3 (fun _ -> Heap.pop h) in
  Alcotest.(check (list (option (pair (float 1e-9) string))))
    "pop order"
    [ Some (1.0, "a"); Some (2.0, "b"); Some (3.0, "c") ]
    order

let test_heap_fifo_ties () =
  let h = Heap.create () in
  ignore (Heap.push h ~time:1.0 "first");
  ignore (Heap.push h ~time:1.0 "second");
  ignore (Heap.push h ~time:1.0 "third");
  let vals =
    List.init 3 (fun _ ->
        match Heap.pop h with Some (_, v) -> v | None -> "?")
  in
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "second"; "third" ] vals

let test_heap_cancel () =
  let h = Heap.create () in
  let _a = Heap.push h ~time:1.0 "a" in
  let b = Heap.push h ~time:2.0 "b" in
  let _c = Heap.push h ~time:3.0 "c" in
  Heap.cancel h b;
  Alcotest.(check int) "live size" 2 (Heap.size h);
  let vals =
    List.init 2 (fun _ ->
        match Heap.pop h with Some (_, v) -> v | None -> "?")
  in
  Alcotest.(check (list string)) "cancelled skipped" [ "a"; "c" ] vals;
  Alcotest.(check bool) "empty" true (Heap.pop h = None)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list (float_bound_exclusive 1000.))
    (fun times ->
      let h = Heap.create () in
      List.iter (fun t -> ignore (Heap.push h ~time:t t)) times;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (t, _) -> drain (t :: acc)
      in
      let popped = drain [] in
      popped = List.stable_sort compare times)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    if x < 0 || x >= 10 then Alcotest.failf "int out of bounds: %d" x;
    let f = Rng.float r 3.5 in
    if f < 0. || f >= 3.5 then Alcotest.failf "float out of bounds: %g" f
  done

let test_rng_exponential_mean () =
  let r = Rng.create 11L in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:2.0
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 2.0) > 0.1 then
    Alcotest.failf "exponential mean off: %g" mean

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_sleep_advances_clock () =
  let final =
    Engine.run (fun () ->
        check_time "start" 0.0 (Engine.now ());
        Engine.sleep 1.5;
        check_time "after sleep" 1.5 (Engine.now ());
        Engine.sleep 0.5;
        check_time "after second sleep" 2.0 (Engine.now ()))
  in
  check_time "final clock" 2.0 final

let test_spawn_interleaving () =
  let log = ref [] in
  let say s = log := s :: !log in
  ignore
    (Engine.run (fun () ->
         Engine.spawn (fun () ->
             Engine.sleep 1.0;
             say "b@1");
         Engine.spawn (fun () ->
             Engine.sleep 2.0;
             say "c@2");
         say "a@0";
         Engine.sleep 3.0;
         say "d@3"));
  Alcotest.(check (list string))
    "event order" [ "a@0"; "b@1"; "c@2"; "d@3" ] (List.rev !log)

let test_ivar_blocks () =
  let result = ref 0 in
  ignore
    (Engine.run (fun () ->
         let iv = Engine.Ivar.create () in
         Engine.spawn (fun () ->
             let v = Engine.Ivar.read iv in
             check_time "woken at fill time" 4.0 (Engine.now ());
             result := v);
         Engine.sleep 4.0;
         Engine.Ivar.fill iv 99));
  Alcotest.(check int) "value delivered" 99 !result

let test_ivar_double_fill () =
  ignore
    (Engine.run (fun () ->
         let iv = Engine.Ivar.create () in
         Engine.Ivar.fill iv 1;
         Alcotest.check_raises "second fill rejected"
           (Invalid_argument "Sim.Engine.Ivar.fill: already filled")
           (fun () -> Engine.Ivar.fill iv 2)))

let test_after_and_cancel () =
  let fired = ref [] in
  ignore
    (Engine.run (fun () ->
         let _t1 = Engine.after 1.0 (fun () -> fired := 1 :: !fired) in
         let t2 = Engine.after 2.0 (fun () -> fired := 2 :: !fired) in
         let _t3 = Engine.after 3.0 (fun () -> fired := 3 :: !fired) in
         Engine.cancel t2;
         Engine.sleep 5.0));
  Alcotest.(check (list int)) "only uncancelled fire" [ 1; 3 ]
    (List.rev !fired)

let test_run_until () =
  let final =
    Engine.run ~until:2.5 (fun () ->
        let rec tick () =
          Engine.sleep 1.0;
          tick ()
        in
        tick ())
  in
  check_time "stops at horizon" 2.5 final

let test_no_nested_run () =
  ignore
    (Engine.run (fun () ->
         Alcotest.check_raises "nested run rejected"
           (Invalid_argument "Sim.Engine.run: a simulation is already running")
           (fun () -> ignore (Engine.run (fun () -> ())))))

let test_past_scheduling_rejected () =
  ignore
    (Engine.run (fun () ->
         Engine.sleep 5.0;
         match Engine.at 1.0 (fun () -> ()) with
         | _ -> Alcotest.fail "expected Invalid_argument"
         | exception Invalid_argument _ -> ()))

(* ------------------------------------------------------------------ *)
(* Resource *)

let test_resource_mutex () =
  let log = ref [] in
  ignore
    (Engine.run (fun () ->
         let m = Resource.create 1 in
         let worker name dur () =
           Resource.with_resource m (fun () ->
               log := (name, Engine.now ()) :: !log;
               Engine.sleep dur)
         in
         Engine.spawn (worker "a" 2.0);
         Engine.spawn (worker "b" 1.0);
         Engine.spawn (worker "c" 1.0)));
  let entries = List.rev !log in
  Alcotest.(check (list (pair string (float 1e-9))))
    "serialised in FIFO order"
    [ ("a", 0.0); ("b", 2.0); ("c", 3.0) ]
    entries

let test_resource_counts () =
  ignore
    (Engine.run (fun () ->
         let r = Resource.create 2 in
         Alcotest.(check int) "available" 2 (Resource.available r);
         Resource.acquire r;
         Resource.acquire r;
         Alcotest.(check bool) "exhausted" false (Resource.try_acquire r);
         Resource.release r;
         Alcotest.(check bool) "one back" true (Resource.try_acquire r);
         Resource.release r;
         Resource.release r))

let test_resource_over_release () =
  ignore
    (Engine.run (fun () ->
         let r = Resource.create 1 in
         Alcotest.check_raises "over-release"
           (Invalid_argument
              "Sim.Resource.release: released more than acquired")
           (fun () -> Resource.release r)))

(* ------------------------------------------------------------------ *)
(* Cpu *)

let test_cpu_single_job () =
  ignore
    (Engine.run (fun () ->
         let cpu = Cpu.create ~ncores:1 () in
         Cpu.consume cpu ~core:0 2.0;
         check_time "exclusive job runs at full speed" 2.0 (Engine.now ())))

let test_cpu_sharing () =
  (* Two equal jobs on one core take twice as long. *)
  let t_done = ref [] in
  ignore
    (Engine.run (fun () ->
         let cpu = Cpu.create ~ncores:1 () in
         Engine.spawn (fun () ->
             Cpu.consume cpu ~core:0 1.0;
             t_done := ("a", Engine.now ()) :: !t_done);
         Engine.spawn (fun () ->
             Cpu.consume cpu ~core:0 1.0;
             t_done := ("b", Engine.now ()) :: !t_done)));
  List.iter
    (fun (name, t) -> check_time (name ^ " finish") 2.0 t)
    !t_done;
  Alcotest.(check int) "both finished" 2 (List.length !t_done)

let test_cpu_unequal_jobs () =
  (* Jobs of work 1 and 3 sharing a core: first finishes at 2 (half
     speed), then the second runs alone: 3 - 1 = 2 remaining at full
     speed, finishing at 4. *)
  let finish = Hashtbl.create 4 in
  ignore
    (Engine.run (fun () ->
         let cpu = Cpu.create ~ncores:1 () in
         Engine.spawn (fun () ->
             Cpu.consume cpu ~core:0 1.0;
             Hashtbl.replace finish "short" (Engine.now ()));
         Engine.spawn (fun () ->
             Cpu.consume cpu ~core:0 3.0;
             Hashtbl.replace finish "long" (Engine.now ()))));
  check_time "short job" 2.0 (Hashtbl.find finish "short");
  check_time "long job" 4.0 (Hashtbl.find finish "long")

let test_cpu_speed_factor () =
  ignore
    (Engine.run (fun () ->
         let cpu = Cpu.create ~speed:2.0 ~ncores:1 () in
         Cpu.consume cpu ~core:0 4.0;
         check_time "double speed halves time" 2.0 (Engine.now ())))

let test_cpu_late_arrival () =
  (* Job B arrives while A is mid-flight: A had 1s served of 2s; with
     sharing, A's remaining 1s takes 2s -> A ends at 3; B (work 2) has
     1s left when A ends -> B ends at 4. *)
  let finish = Hashtbl.create 4 in
  ignore
    (Engine.run (fun () ->
         let cpu = Cpu.create ~ncores:1 () in
         Engine.spawn (fun () ->
             Cpu.consume cpu ~core:0 2.0;
             Hashtbl.replace finish "a" (Engine.now ()));
         Engine.spawn (fun () ->
             Engine.sleep 1.0;
             Cpu.consume cpu ~core:0 2.0;
             Hashtbl.replace finish "b" (Engine.now ()))));
  check_time "a" 3.0 (Hashtbl.find finish "a");
  check_time "b" 4.0 (Hashtbl.find finish "b")

let test_cpu_independent_cores () =
  ignore
    (Engine.run (fun () ->
         let cpu = Cpu.create ~ncores:2 () in
         let d0 = Cpu.consume_async cpu ~core:0 1.0 in
         let d1 = Cpu.consume_async cpu ~core:1 1.0 in
         Engine.wait_all [ d0; d1 ];
         check_time "no cross-core interference" 1.0 (Engine.now ())))

let test_cpu_utilization () =
  ignore
    (Engine.run (fun () ->
         let cpu = Cpu.create ~ncores:2 () in
         Engine.spawn (fun () -> Cpu.consume cpu ~core:0 1.0);
         Engine.sleep 2.0;
         (* Core 0 busy 1s of 2s; core 1 idle: 25% of 2-core capacity. *)
         let u = Cpu.utilization cpu ~since:0.0 in
         if not (feq u 0.25) then Alcotest.failf "utilization: %g" u))

let test_cpu_least_loaded () =
  ignore
    (Engine.run (fun () ->
         let cpu = Cpu.create ~ncores:3 () in
         ignore (Cpu.consume_async cpu ~core:0 10.0);
         ignore (Cpu.consume_async cpu ~core:1 10.0);
         ignore (Cpu.consume_async cpu ~core:1 10.0);
         Alcotest.(check int) "least loaded" 2
           (Cpu.pick_least_loaded cpu ~cores:[ 0; 1; 2 ]);
         Alcotest.(check int) "loads" 2 (Cpu.load cpu ~core:1);
         Alcotest.(check int) "total" 3 (Cpu.total_load cpu)))

let prop_cpu_work_conservation =
  (* Total completion time of N jobs submitted together on one core
     equals the sum of their work (PS conserves work). *)
  QCheck.Test.make ~name:"cpu work conservation" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 8) (float_bound_exclusive 2.0))
    (fun works ->
      let works = List.map (fun w -> w +. 0.01) works in
      let total = List.fold_left ( +. ) 0. works in
      let finish = ref 0. in
      ignore
        (Engine.run (fun () ->
             let cpu = Cpu.create ~ncores:1 () in
             let ivars =
               List.map (fun w -> Cpu.consume_async cpu ~core:0 w) works
             in
             Engine.wait_all ivars;
             finish := Engine.now ()));
      Float.abs (!finish -. total) < 1e-6)

let suites =
  [
    ( "sim.heap",
      [
        Alcotest.test_case "ordering" `Quick test_heap_order;
        Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "cancel" `Quick test_heap_cancel;
        QCheck_alcotest.to_alcotest prop_heap_sorted;
      ] );
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "bounds" `Quick test_rng_bounds;
        Alcotest.test_case "exponential mean" `Quick
          test_rng_exponential_mean;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "sleep advances clock" `Quick
          test_sleep_advances_clock;
        Alcotest.test_case "spawn interleaving" `Quick
          test_spawn_interleaving;
        Alcotest.test_case "ivar blocks and wakes" `Quick test_ivar_blocks;
        Alcotest.test_case "ivar double fill" `Quick test_ivar_double_fill;
        Alcotest.test_case "after and cancel" `Quick test_after_and_cancel;
        Alcotest.test_case "run until horizon" `Quick test_run_until;
        Alcotest.test_case "no nested run" `Quick test_no_nested_run;
        Alcotest.test_case "past scheduling rejected" `Quick
          test_past_scheduling_rejected;
      ] );
    ( "sim.resource",
      [
        Alcotest.test_case "mutex serialises" `Quick test_resource_mutex;
        Alcotest.test_case "counting" `Quick test_resource_counts;
        Alcotest.test_case "over-release" `Quick test_resource_over_release;
      ] );
    ( "sim.cpu",
      [
        Alcotest.test_case "single job" `Quick test_cpu_single_job;
        Alcotest.test_case "equal sharing" `Quick test_cpu_sharing;
        Alcotest.test_case "unequal jobs" `Quick test_cpu_unequal_jobs;
        Alcotest.test_case "speed factor" `Quick test_cpu_speed_factor;
        Alcotest.test_case "late arrival" `Quick test_cpu_late_arrival;
        Alcotest.test_case "independent cores" `Quick
          test_cpu_independent_cores;
        Alcotest.test_case "utilization" `Quick test_cpu_utilization;
        Alcotest.test_case "least loaded" `Quick test_cpu_least_loaded;
        QCheck_alcotest.to_alcotest prop_cpu_work_conservation;
      ] );
  ]
