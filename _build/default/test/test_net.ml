(* Tests for the network substrate: switch, flows, TLS. *)

module Engine = Lightvm_sim.Engine
module Packet = Lightvm_net.Packet
module Switch = Lightvm_net.Switch
module Flow = Lightvm_net.Flow
module Tls = Lightvm_net.Tls
module Stack = Lightvm_net.Stack

let in_sim f () = ignore (Engine.run f)

(* ------------------------------------------------------------------ *)
(* Switch *)

let test_switch_learning_and_forwarding =
  in_sim (fun () ->
      let sw = Switch.create () in
      let got = Hashtbl.create 4 in
      let attach port =
        Switch.attach sw ~port ~handler:(fun pkt ->
            Hashtbl.replace got (port, pkt.Packet.seq) pkt)
      in
      attach 1;
      attach 2;
      attach 3;
      (* 1 -> 2 before learning: flooded to 2 and 3. *)
      Switch.send sw
        (Packet.make ~src:1 ~dst:(Packet.Addr 2) ~kind:Packet.Udp ~seq:1 ());
      Engine.sleep 0.001;
      Alcotest.(check bool) "flooded to 2" true (Hashtbl.mem got (2, 1));
      Alcotest.(check bool) "flooded to 3" true (Hashtbl.mem got (3, 1));
      (* 2 replies; now 1 and 2 are learned: 1 -> 2 is unicast only. *)
      Switch.send sw
        (Packet.make ~src:2 ~dst:(Packet.Addr 1) ~kind:Packet.Udp ~seq:2 ());
      Engine.sleep 0.001;
      Switch.send sw
        (Packet.make ~src:1 ~dst:(Packet.Addr 2) ~kind:Packet.Udp ~seq:3 ());
      Engine.sleep 0.001;
      Alcotest.(check bool) "unicast to 2" true (Hashtbl.mem got (2, 3));
      Alcotest.(check bool) "not to 3" false (Hashtbl.mem got (3, 3));
      Alcotest.(check int) "fdb" 2 (Switch.learned sw))

let test_switch_broadcast =
  in_sim (fun () ->
      let sw = Switch.create () in
      let hits = ref 0 in
      for port = 1 to 5 do
        Switch.attach sw ~port ~handler:(fun _ -> incr hits)
      done;
      Switch.send sw
        (Packet.make ~src:1 ~dst:Packet.Broadcast ~kind:Packet.Arp_request
           ~seq:1 ());
      Engine.sleep 0.001;
      Alcotest.(check int) "all but sender" 4 !hits)

let test_switch_overload_drops_arp =
  in_sim (fun () ->
      (* Tiny capacity so the test saturates it instantly. *)
      let sw = Switch.create ~capacity_pps:1000. ~queue_slots:16 () in
      for port = 1 to 10 do
        Switch.attach sw ~port ~handler:(fun _ -> ())
      done;
      (* Burst far above capacity: broadcasts must be shed first. *)
      for i = 1 to 200 do
        Switch.send sw
          (Packet.make ~src:1 ~dst:Packet.Broadcast
             ~kind:Packet.Arp_request ~seq:i ());
        Switch.send sw
          (Packet.make ~src:1 ~dst:(Packet.Addr 2) ~kind:Packet.Udp
             ~seq:(1000 + i) ())
      done;
      Alcotest.(check bool) "drops happened" true (Switch.dropped sw > 0);
      Alcotest.(check bool) "mostly ARP dropped" true
        (2 * Switch.dropped_broadcast sw > Switch.dropped sw))

let test_switch_detach =
  in_sim (fun () ->
      let sw = Switch.create () in
      let got = ref 0 in
      Switch.attach sw ~port:1 ~handler:(fun _ -> ());
      Switch.attach sw ~port:2 ~handler:(fun _ -> incr got);
      Switch.detach sw ~port:2;
      Switch.send sw
        (Packet.make ~src:1 ~dst:(Packet.Addr 2) ~kind:Packet.Udp ~seq:1 ());
      Engine.sleep 0.001;
      Alcotest.(check int) "nothing delivered" 0 !got)

(* ------------------------------------------------------------------ *)
(* Flows *)

let demand ?(offered = 10.0e6) ?(cpu_per_bit = 1.0e-9) ~id ~core () =
  { Flow.flow_id = id; offered_bps = offered; cpu_per_bit; core }

let test_flow_undersubscribed () =
  let demands = List.init 4 (fun i -> demand ~id:i ~core:0 ()) in
  let allocs = Flow.allocate ~core_speed:1.0 ~demands in
  List.iter
    (fun a ->
      Alcotest.(check (float 1.)) "full rate" 10.0e6 a.Flow.achieved_bps)
    allocs

let test_flow_saturated_fair () =
  (* Each flow needs 0.4 cores; 4 flows on one core -> 0.25 each. *)
  let demands =
    List.init 4 (fun i -> demand ~id:i ~cpu_per_bit:4.0e-8 ~core:0 ())
  in
  let allocs = Flow.allocate ~core_speed:1.0 ~demands in
  List.iter
    (fun a ->
      Alcotest.(check (float 1e4)) "fair share" 6.25e6 a.Flow.achieved_bps)
    allocs;
  Alcotest.(check (float 1e5)) "total is core capacity" 25.0e6
    (Flow.total_bps allocs)

let test_flow_max_min () =
  (* One small flow and one huge flow: small one fully satisfied. *)
  let demands =
    [
      demand ~id:0 ~offered:1.0e6 ~cpu_per_bit:4.0e-8 ~core:0 ();
      demand ~id:1 ~offered:100.0e6 ~cpu_per_bit:4.0e-8 ~core:0 ();
    ]
  in
  match Flow.allocate ~core_speed:1.0 ~demands with
  | [ small; big ] ->
      Alcotest.(check (float 1.)) "small satisfied" 1.0e6
        small.Flow.achieved_bps;
      (* Remaining 0.96 cores -> 24 Mbps for the big flow. *)
      Alcotest.(check (float 1e4)) "big gets the rest" 24.0e6
        big.Flow.achieved_bps
  | _ -> Alcotest.fail "wrong allocation shape"

let test_flow_cores_independent () =
  let demands =
    [ demand ~id:0 ~cpu_per_bit:4.0e-8 ~offered:100.0e6 ~core:0 ();
      demand ~id:1 ~cpu_per_bit:4.0e-8 ~offered:100.0e6 ~core:1 () ]
  in
  let allocs = Flow.allocate ~core_speed:1.0 ~demands in
  List.iter
    (fun a ->
      Alcotest.(check (float 1e4)) "each core alone" 25.0e6
        a.Flow.achieved_bps)
    allocs

let prop_flow_never_exceeds_capacity =
  QCheck.Test.make ~name:"flow allocation respects core capacity"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 1 20)
              (pair (float_bound_exclusive 100.) (int_range 0 3)))
    (fun specs ->
      let demands =
        List.mapi
          (fun i (mbps, core) ->
            demand ~id:i ~offered:((mbps +. 0.1) *. 1e6)
              ~cpu_per_bit:2.0e-8 ~core ())
          specs
      in
      let allocs = Flow.allocate ~core_speed:1.0 ~demands in
      (* Per-core CPU use must not exceed capacity (1.0 + eps). *)
      let cpu_by_core = Hashtbl.create 4 in
      List.iter2
        (fun d a ->
          let used =
            Option.value ~default:0.
              (Hashtbl.find_opt cpu_by_core d.Flow.core)
          in
          Hashtbl.replace cpu_by_core d.Flow.core
            (used +. (a.Flow.achieved_bps *. d.Flow.cpu_per_bit)))
        demands allocs;
      Hashtbl.fold (fun _ used ok -> ok && used <= 1.0 +. 1e-9)
        cpu_by_core true
      && List.for_all2
           (fun d a ->
             a.Flow.achieved_bps <= d.Flow.offered_bps +. 1e-6)
           demands allocs)

(* ------------------------------------------------------------------ *)
(* TLS *)

let test_tls_state_machine () =
  let final =
    List.fold_left
      (fun state msg ->
        match Tls.step state msg with
        | Ok s -> s
        | Error e -> Alcotest.failf "handshake step failed: %s" e)
      Tls.initial Tls.handshake_messages
  in
  Alcotest.(check bool) "complete" true (Tls.is_complete final);
  Alcotest.(check bool) "no more expected" true
    (Tls.expected_next final = None)

let test_tls_out_of_order () =
  match Tls.step Tls.initial Tls.Finished with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-order message accepted"

let test_tls_costs () =
  let linux = Tls.server_handshake_cpu Tls.rsa_1024 ~stack:Stack.linux in
  let lwip = Tls.server_handshake_cpu Tls.rsa_1024 ~stack:Stack.lwip in
  (* lwip about 5x more expensive (Fig 16c: unikernel at ~1/5th). *)
  let ratio = lwip /. linux in
  Alcotest.(check bool)
    (Printf.sprintf "lwip/linux ratio ~5 (%.2f)" ratio)
    true
    (ratio > 4. && ratio < 6.);
  Alcotest.(check bool) "rsa2048 costlier" true
    (Tls.server_handshake_cpu Tls.rsa_2048 ~stack:Stack.linux > linux);
  Alcotest.(check bool) "ecdhe cheaper" true
    (Tls.server_handshake_cpu Tls.ecdhe ~stack:Stack.linux < linux)

let test_tls_saturation_estimate () =
  (* 14 cores at 0.85 speed with Linux: ~1400 req/s (paper Fig 16c). *)
  let per_req = Tls.serve_request_cpu Tls.rsa_1024 ~stack:Stack.linux
      ~response_kb:0.5 in
  let capacity = 14. *. 0.85 /. per_req in
  Alcotest.(check bool)
    (Printf.sprintf "capacity ~1400 req/s (%.0f)" capacity)
    true
    (capacity > 1_200. && capacity < 1_700.)

let suites =
  [
    ( "net.switch",
      [
        Alcotest.test_case "learning" `Quick
          test_switch_learning_and_forwarding;
        Alcotest.test_case "broadcast" `Quick test_switch_broadcast;
        Alcotest.test_case "overload drops ARP" `Quick
          test_switch_overload_drops_arp;
        Alcotest.test_case "detach" `Quick test_switch_detach;
      ] );
    ( "net.flow",
      [
        Alcotest.test_case "undersubscribed" `Quick
          test_flow_undersubscribed;
        Alcotest.test_case "saturated fair" `Quick
          test_flow_saturated_fair;
        Alcotest.test_case "max-min" `Quick test_flow_max_min;
        Alcotest.test_case "independent cores" `Quick
          test_flow_cores_independent;
        QCheck_alcotest.to_alcotest prop_flow_never_exceeds_capacity;
      ] );
    ( "net.tls",
      [
        Alcotest.test_case "state machine" `Quick test_tls_state_machine;
        Alcotest.test_case "out of order" `Quick test_tls_out_of_order;
        Alcotest.test_case "stack cost ratio" `Quick test_tls_costs;
        Alcotest.test_case "saturation estimate" `Quick
          test_tls_saturation_estimate;
      ] );
  ]
