(* Model-based property test: random operation sequences against a
   reference model (a flat path->value map with explicit parent
   tracking), checking that the real tree store agrees on every
   observable. *)

module Xs_path = Lightvm_xenstore.Xs_path
module Xs_store = Lightvm_xenstore.Xs_store
module Xs_error = Lightvm_xenstore.Xs_error

module SMap = Map.Make (String)

(* The reference model: a set of existing paths with values. All ops run
   as Dom0, so permissions do not constrain the model. *)
module Model = struct
  type t = string SMap.t (* path -> value; "" for directories *)

  let initial : t =
    SMap.of_seq
      (List.to_seq
         [ ("/local", ""); ("/local/domain", ""); ("/tool", "");
           ("/vm", "") ])

  let parents path =
    (* "/a/b/c" -> ["/a"; "/a/b"] *)
    let segs = String.split_on_char '/' path in
    let segs = List.filter (fun s -> s <> "") segs in
    let rec go acc prefix = function
      | [] | [ _ ] -> List.rev acc
      | seg :: rest ->
          let p = prefix ^ "/" ^ seg in
          go (p :: acc) p rest
    in
    go [] "" segs

  let write model path value =
    let model =
      List.fold_left
        (fun m parent ->
          if SMap.mem parent m then m else SMap.add parent "" m)
        model (parents path)
    in
    SMap.add path value model

  let mkdir model path =
    if SMap.mem path model then model else write model path ""

  let rm model path =
    if not (SMap.mem path model) then None
    else
      Some
        (SMap.filter
           (fun p _ -> not (p = path || String.length p > String.length path
                            && String.sub p 0 (String.length path + 1)
                               = path ^ "/"))
           model)

  let read model path = SMap.find_opt path model

  let children model path =
    let prefix = if path = "/" then "/" else path ^ "/" in
    SMap.fold
      (fun p _ acc ->
        if String.length p > String.length prefix
           && String.sub p 0 (String.length prefix) = prefix
           && not (String.contains_from p (String.length prefix) '/')
        then
          String.sub p (String.length prefix)
            (String.length p - String.length prefix)
          :: acc
        else acc)
      model []
    |> List.sort compare

  let count model = SMap.cardinal model + 1 (* + root *)
end

type op =
  | Op_write of string * string
  | Op_mkdir of string
  | Op_rm of string
  | Op_read of string
  | Op_dir of string

let op_gen =
  let open QCheck.Gen in
  let seg = oneofl [ "a"; "b"; "c"; "d" ] in
  let path =
    map
      (fun segs -> "/" ^ String.concat "/" segs)
      (list_size (int_range 1 4) seg)
  in
  let value = oneofl [ "x"; "y"; "longer-value"; "" ] in
  frequency
    [
      (4, map2 (fun p v -> Op_write (p, v)) path value);
      (2, map (fun p -> Op_mkdir p) path);
      (2, map (fun p -> Op_rm p) path);
      (3, map (fun p -> Op_read p) path);
      (2, map (fun p -> Op_dir p) path);
    ]

let apply_both (store, model) op =
  let p s = Xs_path.of_string s in
  match op with
  | Op_write (path, value) -> (
      match Xs_store.write store ~caller:0 (p path) value with
      | Ok () -> Ok (Model.write model path value)
      | Error e -> Error (e, "write " ^ path))
  | Op_mkdir path -> (
      match Xs_store.mkdir store ~caller:0 (p path) with
      | Ok () -> Ok (Model.mkdir model path)
      | Error e -> Error (e, "mkdir " ^ path))
  | Op_rm path -> (
      let real = Xs_store.rm store ~caller:0 (p path) in
      match (real, Model.rm model path) with
      | Ok (), Some model' -> Ok model'
      | Error Xs_error.ENOENT, None -> Ok model
      | Ok (), None -> Error (Xs_error.EINVAL, "rm diverged (real ok)")
      | Error e, Some _ -> Error (e, "rm diverged (model ok) " ^ path)
      | Error _, None -> Ok model)
  | Op_read path -> (
      let real =
        match Xs_store.read store ~caller:0 (p path) with
        | Ok v -> Some v
        | Error _ -> None
      in
      if real = Model.read model path then Ok model
      else Error (Xs_error.EINVAL, "read diverged at " ^ path))
  | Op_dir path -> (
      let real =
        match Xs_store.directory store ~caller:0 (p path) with
        | Ok entries -> Some entries
        | Error _ -> None
      in
      let expected =
        if path <> "/" && Model.read model path = None then None
        else Some (Model.children model path)
      in
      if real = expected then Ok model
      else Error (Xs_error.EINVAL, "directory diverged at " ^ path))

let prop_store_matches_model =
  QCheck.Test.make ~name:"store agrees with a reference model" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) op_gen))
    (fun ops ->
      let store = Xs_store.create () in
      let rec go model = function
        | [] ->
            (* Final structural check: node counts agree. *)
            Model.count model = Xs_store.node_count store
        | op :: rest -> (
            match apply_both (store, model) op with
            | Ok model' -> go model' rest
            | Error (_, msg) -> QCheck.Test.fail_report msg)
      in
      go Model.initial ops)

let suites =
  [
    ( "xenstore.model",
      [ QCheck_alcotest.to_alcotest prop_store_matches_model ] );
  ]
