test/test_toolstack.ml: Alcotest Float Lightvm_guest Lightvm_hv Lightvm_sim Lightvm_toolstack List Printf QCheck QCheck_alcotest String
