test/test_metrics.ml: Alcotest Astring_check Float Gen Lightvm_metrics List QCheck QCheck_alcotest String
