test/astring_check.ml: String
