test/test_container.ml: Alcotest Lightvm_container Lightvm_hv Lightvm_metrics Lightvm_sim List Printf
