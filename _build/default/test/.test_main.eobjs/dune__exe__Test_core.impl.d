test/test_core.ml: Alcotest Lightvm Lightvm_guest Lightvm_hv Lightvm_metrics Lightvm_sim Lightvm_toolstack List Printf String
