test/test_sim.ml: Alcotest Float Gen Hashtbl Lightvm_sim List QCheck QCheck_alcotest
