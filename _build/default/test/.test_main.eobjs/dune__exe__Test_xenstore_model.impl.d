test/test_xenstore_model.ml: Lightvm_xenstore List Map QCheck QCheck_alcotest String
