test/test_net.ml: Alcotest Gen Hashtbl Lightvm_net Lightvm_sim List Option Printf QCheck QCheck_alcotest
