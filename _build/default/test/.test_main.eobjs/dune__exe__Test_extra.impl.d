test/test_extra.ml: Alcotest Float Format Int32 Lightvm Lightvm_guest Lightvm_hv Lightvm_metrics Lightvm_minipy Lightvm_sim Lightvm_toolstack Lightvm_xenstore List Printf QCheck QCheck_alcotest
