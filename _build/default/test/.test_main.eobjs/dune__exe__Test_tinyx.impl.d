test/test_tinyx.ml: Alcotest Lightvm_guest Lightvm_tinyx List Printf QCheck QCheck_alcotest
