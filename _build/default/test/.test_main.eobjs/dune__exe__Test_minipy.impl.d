test/test_minipy.ml: Alcotest Float Lightvm_minipy List Printf QCheck QCheck_alcotest String
