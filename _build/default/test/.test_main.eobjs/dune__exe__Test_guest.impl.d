test/test_guest.ml: Alcotest Float Lightvm_guest Lightvm_hv Lightvm_sim Lightvm_toolstack List Option Printf
