test/test_xenstore.ml: Alcotest Bytes Fun Gen Lightvm_sim Lightvm_xenstore List Option Printf QCheck QCheck_alcotest String
