test/test_hv.ml: Alcotest Lightvm_hv Lightvm_sim List Printf QCheck QCheck_alcotest
