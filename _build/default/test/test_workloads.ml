(* Tests for the use-case workloads: firewall rule engine and capacity,
   JIT instantiation, TLS termination, the Lambda compute service, and
   the syscall dataset. *)

module Engine = Lightvm_sim.Engine
module Cpu = Lightvm_sim.Cpu
module Cdf = Lightvm_metrics.Cdf
module Stats = Lightvm_metrics.Stats
module Mode = Lightvm_toolstack.Mode
module Syscalls = Lightvm_workloads.Syscalls
module Firewall = Lightvm_workloads.Firewall
module Jit = Lightvm_workloads.Jit
module Tls_term = Lightvm_workloads.Tls_term
module Lambda = Lightvm_workloads.Lambda

(* ------------------------------------------------------------------ *)
(* Syscalls (Fig 1) *)

let test_syscalls_monotonic () =
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "chronological" true
          (a.Syscalls.year <= b.Syscalls.year);
        Alcotest.(check bool) "non-decreasing" true
          (a.Syscalls.syscalls <= b.Syscalls.syscalls);
        check rest
    | _ -> ()
  in
  check Syscalls.data;
  let slope = Syscalls.growth_per_year () in
  Alcotest.(check bool)
    (Printf.sprintf "about 10 syscalls/year (%.1f)" slope)
    true
    (slope > 5. && slope < 15.)

let test_syscalls_lookup () =
  Alcotest.(check (option int)) "2010 sees 2.6.32" (Some 337)
    (Syscalls.count_in 2010);
  Alcotest.(check (option int)) "before the data" None
    (Syscalls.count_in 1999)

(* ------------------------------------------------------------------ *)
(* Firewall rule engine *)

let pkt ?(src = 0x0b000001) ?(dst = 0x0a000001) ?(proto = `Tcp)
    ?(dport = 80) () =
  { Firewall.src_ip = src; dst_ip = dst; pkt_proto = proto;
    pkt_dport = dport }

let test_firewall_first_match () =
  let rs =
    Firewall.compile ~default:Firewall.Drop
      [
        Firewall.rule ~proto:`Tcp ~dport:(80, 80) Firewall.Allow;
        Firewall.rule ~proto:`Tcp Firewall.Drop;
        Firewall.rule ~proto:`Tcp ~dport:(443, 443) Firewall.Allow;
      ]
  in
  Alcotest.(check bool) "port 80 allowed" true
    (Firewall.eval rs (pkt ~dport:80 ()) = Firewall.Allow);
  (* 443 hits the catch-all Drop before its Allow: first match wins. *)
  Alcotest.(check bool) "first match wins" true
    (Firewall.eval rs (pkt ~dport:443 ()) = Firewall.Drop);
  Alcotest.(check bool) "default" true
    (Firewall.eval rs (pkt ~proto:`Udp ()) = Firewall.Drop)

let test_firewall_prefixes () =
  let rs =
    Firewall.compile ~default:Firewall.Drop
      [ Firewall.rule ~src:(0x0a000000, 8) Firewall.Allow ]
  in
  Alcotest.(check bool) "inside /8" true
    (Firewall.eval rs (pkt ~src:0x0a123456 ()) = Firewall.Allow);
  Alcotest.(check bool) "outside /8" true
    (Firewall.eval rs (pkt ~src:0x0b000000 ()) = Firewall.Drop)

let test_personal_ruleset () =
  let user = 42 in
  let rs = Firewall.personal_ruleset ~user_id:user in
  let user_ip = 0x0a000000 lor user in
  Alcotest.(check bool) "outbound allowed" true
    (Firewall.eval rs (pkt ~src:user_ip ~dst:0x08080808 ())
    = Firewall.Allow);
  Alcotest.(check bool) "inbound web allowed" true
    (Firewall.eval rs (pkt ~dst:user_ip ~dport:443 ()) = Firewall.Allow);
  Alcotest.(check bool) "inbound ssh dropped" true
    (Firewall.eval rs (pkt ~dst:user_ip ~dport:22 ()) = Firewall.Drop);
  Alcotest.(check bool) "icmp allowed" true
    (Firewall.eval rs (pkt ~dst:user_ip ~proto:`Icmp ()) = Firewall.Allow)

let prop_firewall_default_when_no_match =
  QCheck.Test.make ~name:"empty ruleset always hits the default"
    ~count:100
    QCheck.(pair (int_bound 0xffffff) (int_bound 65535))
    (fun (ip, port) ->
      let rs = Firewall.compile ~default:Firewall.Allow [] in
      Firewall.eval rs (pkt ~src:ip ~dst:ip ~dport:port ())
      = Firewall.Allow)

(* ------------------------------------------------------------------ *)
(* Firewall capacity (Fig 16a) *)

let test_firewall_capacity_shape () =
  match Firewall.capacity ~users:[ 100; 250; 1000 ] () with
  | [ small; knee; big ] ->
      (* Linear region: everyone gets their 10 Mbps. *)
      Alcotest.(check (float 0.1)) "100 users linear" 1.0
        small.Firewall.total_gbps;
      Alcotest.(check (float 0.5)) "knee at ~250 users" 2.5
        knee.Firewall.total_gbps;
      (* Saturated: total keeps growing but per-user drops to ~4-5. *)
      Alcotest.(check bool)
        (Printf.sprintf "1000 users total %.2f in [3.5, 5.5]"
           big.Firewall.total_gbps)
        true
        (big.Firewall.total_gbps > 3.5 && big.Firewall.total_gbps < 5.5);
      Alcotest.(check bool)
        (Printf.sprintf "per-user %.1f Mbps in [3.5, 5.5]"
           big.Firewall.per_user_mbps)
        true
        (big.Firewall.per_user_mbps > 3.5
        && big.Firewall.per_user_mbps < 5.5);
      (* RTT: negligible at low load, ~60 ms at 1000 users. *)
      Alcotest.(check bool)
        (Printf.sprintf "low RTT %.1f" small.Firewall.rtt_ms)
        true (small.Firewall.rtt_ms < 5.);
      Alcotest.(check bool)
        (Printf.sprintf "RTT at 1000 %.0f in [40, 90]" big.Firewall.rtt_ms)
        true
        (big.Firewall.rtt_ms > 40. && big.Firewall.rtt_ms < 90.)
  | _ -> Alcotest.fail "wrong number of points"

(* ------------------------------------------------------------------ *)
(* JIT instantiation (Fig 16b) *)

let test_jit_normal_load () =
  let result =
    Jit.run { Jit.default_config with Jit.clients = 40 }
  in
  Alcotest.(check int) "all clients measured" 40
    (List.length result.Jit.rtts);
  Alcotest.(check int) "one VM per client" 40 result.Jit.vms_booted;
  let median = Cdf.quantile result.Jit.cdf 0.5 in
  (* Paper: 13 ms median at 25 ms inter-arrivals. *)
  Alcotest.(check bool)
    (Printf.sprintf "median %.1f ms in [5, 25]" (median *. 1e3))
    true
    (median > 0.005 && median < 0.025);
  Alcotest.(check int) "no timeouts" 0 result.Jit.timeouts

let test_jit_overload_tail () =
  (* Fast arrivals + small bridge: ARP drops, timeouts, long tail. *)
  let result =
    Jit.run
      {
        Jit.default_config with
        Jit.arrival_interval = 0.010;
        clients = 250;
        bridge_pps = 6_000.;
      }
  in
  Alcotest.(check bool)
    (Printf.sprintf "ARP drops happened (%d)" result.Jit.arp_drops)
    true
    (result.Jit.arp_drops > 0);
  Alcotest.(check bool)
    (Printf.sprintf "timeouts happened (%d)" result.Jit.timeouts)
    true
    (result.Jit.timeouts > 0);
  let p99 = Cdf.quantile result.Jit.cdf 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "long tail (p99 %.2f s)" p99)
    true (p99 >= 1.0)

let test_jit_teardown () =
  let result =
    Jit.run
      { Jit.default_config with Jit.clients = 20; idle_teardown = 1.0 }
  in
  Alcotest.(check bool)
    (Printf.sprintf "idle VMs reaped (%d)" result.Jit.torn_down)
    true
    (result.Jit.torn_down > 0)

(* ------------------------------------------------------------------ *)
(* TLS termination (Fig 16c) *)

let test_tls_throughput_shape () =
  let bare n = Tls_term.throughput Tls_term.Bare_metal ~instances:n in
  let uni n = Tls_term.throughput Tls_term.Unikernel ~instances:n in
  (* Rises while cores fill, then flat. *)
  Alcotest.(check bool) "2 instances ~2x of 1" true
    (bare 2 > 1.9 *. bare 1 && bare 2 < 2.1 *. bare 1);
  Alcotest.(check (float 1e-6)) "flat beyond core count" (bare 100)
    (bare 1000);
  (* Paper's levels: ~1400 req/s for bare metal/Tinyx; unikernel ~1/5. *)
  Alcotest.(check bool)
    (Printf.sprintf "bare saturation %.0f in [1200, 1700]" (bare 1000))
    true
    (bare 1000 > 1200. && bare 1000 < 1700.);
  let ratio = bare 1000 /. uni 1000 in
  Alcotest.(check bool)
    (Printf.sprintf "unikernel ~5x slower (%.1f)" ratio)
    true
    (ratio > 4. && ratio < 6.);
  let tinyx = Tls_term.throughput Tls_term.Tinyx_vm ~instances:1000 in
  Alcotest.(check bool) "tinyx close to bare metal" true
    (tinyx > 0.9 *. bare 1000)

let test_tls_serve_one () =
  ignore
    (Engine.run (fun () ->
         let cpu = Cpu.create ~ncores:1 () in
         Tls_term.serve_one cpu ~core:0 Tls_term.Bare_metal;
         let linux_t = Engine.now () in
         Tls_term.serve_one cpu ~core:0 Tls_term.Unikernel;
         let lwip_t = Engine.now () -. linux_t in
         Alcotest.(check bool) "lwip request slower" true
           (lwip_t > 3. *. linux_t)))

let test_tls_footprints () =
  let uni = Tls_term.footprint Tls_term.Unikernel in
  let tinyx = Tls_term.footprint Tls_term.Tinyx_vm in
  Alcotest.(check (float 0.1)) "unikernel 16MB" 16.
    uni.Tls_term.instance_mem_mb;
  Alcotest.(check (float 0.1)) "tinyx 40MB" 40.
    tinyx.Tls_term.instance_mem_mb;
  Alcotest.(check bool) "unikernel boots much faster" true
    (uni.Tls_term.boot_ms *. 10. < tinyx.Tls_term.boot_ms)

(* ------------------------------------------------------------------ *)
(* Lambda compute service (Figs 17/18) *)

let lambda_config mode requests =
  { (Lambda.default_config mode) with Lambda.requests }

let test_lambda_underloaded () =
  (* Slow arrivals: no queueing, service ~ compute time + overheads. *)
  let result =
    Lambda.run
      { (lambda_config Mode.lightvm 20) with Lambda.inter_arrival = 1.0 }
  in
  Alcotest.(check int) "no failures" 0 result.Lambda.failures;
  Alcotest.(check bool) "outputs verified" true result.Lambda.outputs_ok;
  let times = List.map snd result.Lambda.service_times in
  let mean =
    List.fold_left ( +. ) 0. times /. float_of_int (List.length times)
  in
  Alcotest.(check bool)
    (Printf.sprintf "service ~0.8s each (%.2f s)" mean)
    true
    (mean > 0.75 && mean < 1.1)

let test_lambda_overloaded_backlog () =
  let result = Lambda.run (lambda_config Mode.lightvm 150) in
  let last_quarter =
    List.filter (fun (i, _) -> i >= 110) result.Lambda.service_times
    |> List.map snd
  in
  let early =
    List.filter (fun (i, _) -> i < 20) result.Lambda.service_times
    |> List.map snd
  in
  Alcotest.(check bool) "backlog grows service times" true
    (Stats.percentile last_quarter 50. > 2. *. Stats.percentile early 50.);
  let peak =
    List.fold_left (fun acc (_, c) -> max acc c) 0 result.Lambda.concurrency
  in
  Alcotest.(check bool)
    (Printf.sprintf "VMs back up (%d concurrent)" peak)
    true (peak > 10)

let test_lambda_xs_worse_than_lightvm () =
  let xs = Lambda.run (lambda_config Mode.chaos_xs 150) in
  let lightvm = Lambda.run (lambda_config Mode.lightvm 150) in
  let total r =
    List.fold_left (fun acc (_, t) -> acc +. t) 0. r.Lambda.service_times
  in
  Alcotest.(check bool)
    (Printf.sprintf "XS slower in aggregate (%.0f vs %.0f s)" (total xs)
       (total lightvm))
    true
    (total xs > total lightvm)

let test_lambda_program_really_runs () =
  (* A bad program must surface as failed outputs. *)
  match
    Lambda.run
      { (lambda_config Mode.lightvm 2) with
        Lambda.program = "print(1 / 0)" }
  with
  | _ -> Alcotest.fail "broken program accepted"
  | exception Invalid_argument _ -> ()

let suites =
  [
    ( "workloads.syscalls",
      [
        Alcotest.test_case "monotonic" `Quick test_syscalls_monotonic;
        Alcotest.test_case "lookup" `Quick test_syscalls_lookup;
      ] );
    ( "workloads.firewall",
      [
        Alcotest.test_case "first match" `Quick test_firewall_first_match;
        Alcotest.test_case "prefixes" `Quick test_firewall_prefixes;
        Alcotest.test_case "personal ruleset" `Quick test_personal_ruleset;
        QCheck_alcotest.to_alcotest prop_firewall_default_when_no_match;
        Alcotest.test_case "capacity shape (Fig 16a)" `Quick
          test_firewall_capacity_shape;
      ] );
    ( "workloads.jit",
      [
        Alcotest.test_case "normal load (Fig 16b)" `Quick
          test_jit_normal_load;
        Alcotest.test_case "overload tail" `Quick test_jit_overload_tail;
        Alcotest.test_case "idle teardown" `Quick test_jit_teardown;
      ] );
    ( "workloads.tls",
      [
        Alcotest.test_case "throughput shape (Fig 16c)" `Quick
          test_tls_throughput_shape;
        Alcotest.test_case "serve one" `Quick test_tls_serve_one;
        Alcotest.test_case "footprints" `Quick test_tls_footprints;
      ] );
    ( "workloads.lambda",
      [
        Alcotest.test_case "underloaded" `Quick test_lambda_underloaded;
        Alcotest.test_case "overload backlog (Fig 17)" `Quick
          test_lambda_overloaded_backlog;
        Alcotest.test_case "XS vs LightVM" `Quick
          test_lambda_xs_worse_than_lightvm;
        Alcotest.test_case "program really runs" `Quick
          test_lambda_program_really_runs;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* The daytime service itself (Section 3.1) *)

module Daytime = Lightvm_workloads.Daytime
module Switch = Lightvm_net.Switch
module Xen = Lightvm_hv.Xen
module Toolstack = Lightvm_toolstack.Toolstack
module Guest = Lightvm_guest.Guest
module Create = Lightvm_toolstack.Create
module Image = Lightvm_guest.Image

let test_daytime_format () =
  Alcotest.(check string) "the epoch" "Thursday, January 1, 1970 0:00:00-UTC"
    (Daytime.format_time 0.);
  Alcotest.(check string) "42s in" "Thursday, January 1, 1970 0:00:42-UTC"
    (Daytime.format_time 42.);
  Alcotest.(check string) "next day"
    "Friday, January 2, 1970 0:00:01-UTC"
    (Daytime.format_time 86_401.);
  (* Leap-year handling: Feb 29 1972 exists. *)
  let feb29_1972 = ((365 * 2) + 31 + 28) * 86_400 in
  Alcotest.(check string) "leap day"
    "Tuesday, February 29, 1972 0:00:00-UTC"
    (Daytime.format_time (float_of_int feb29_1972))

let test_daytime_end_to_end () =
  ignore
    (Lightvm_sim.Engine.run (fun () ->
         let xen = Xen.boot () in
         let ts =
           Toolstack.make ~xen ~mode:Lightvm_toolstack.Mode.lightvm ()
         in
         let cfg =
           Lightvm_toolstack.Vmconfig.for_image ~name:"daytime-0"
             Image.daytime
         in
         let created = Toolstack.create_vm_exn ts cfg in
         Guest.wait_ready created.Create.guest;
         let sw = Switch.create () in
         let server =
           Daytime.start ~switch:sw ~xen ~domid:created.Create.domid
             ~port:80
         in
         Lightvm_sim.Engine.sleep 3600.;
         let daytime, rtt =
           Daytime.query ~switch:sw ~client_port:9 ~server_port:80 ~seq:1
         in
         Alcotest.(check string) "served the virtual clock"
           "Thursday, January 1, 1970 1:00:00-UTC" daytime;
         Alcotest.(check bool)
           (Printf.sprintf "round trip fast (%.0f us)" (rtt *. 1e6))
           true
           (rtt > 0. && rtt < 0.001);
         Alcotest.(check int) "one connection" 1
           (Daytime.connections_served server);
         Daytime.stop server;
         Lightvm_sim.Engine.stop ()))

let daytime_suite =
  ( "workloads.daytime",
    [
      Alcotest.test_case "rfc867 formatting" `Quick test_daytime_format;
      Alcotest.test_case "end to end over the switch" `Quick
        test_daytime_end_to_end;
    ] )

let suites = suites @ [ daytime_suite ]
