(* Tiny substring helper shared by test files (no extra deps). *)
let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > hn then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0
