(* Tests for the container/process baselines. *)

module Engine = Lightvm_sim.Engine
module Rng = Lightvm_sim.Rng
module Params = Lightvm_hv.Params
module Machine = Lightvm_container.Machine
module Layers = Lightvm_container.Layers
module Docker = Lightvm_container.Docker
module Process = Lightvm_container.Process

let in_sim f () = ignore (Engine.run f)

(* ------------------------------------------------------------------ *)
(* Layers *)

let test_layer_sharing () =
  let store = Layers.create_store () in
  let added1 = Layers.pull store Layers.micropython_image in
  let added2 = Layers.pull store Layers.alpine_noop in
  Alcotest.(check bool) "first pull stores layers" true (added1 > 0);
  (* alpine base shared with micropython: only the tiny app layer new. *)
  Alcotest.(check bool)
    (Printf.sprintf "shared base free (added %d kb)" added2)
    true
    (added2 < 100);
  Alcotest.(check int) "pull is idempotent" 0
    (Layers.pull store Layers.micropython_image)

(* ------------------------------------------------------------------ *)
(* Docker *)

let test_docker_run_time =
  in_sim (fun () ->
      let machine = Machine.create () in
      let engine = Docker.create machine in
      let t0 = Engine.now () in
      (match
         Docker.run engine ~image:Layers.micropython_image ~name:"c1" ()
       with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "run failed");
      let dt = Engine.now () -. t0 in
      (* "Docker containers start in around 200ms" (Fig 4). *)
      Alcotest.(check bool)
        (Printf.sprintf "docker run ~200ms (%.0fms)" (dt *. 1e3))
        true
        (dt > 0.1 && dt < 0.4))

let test_docker_pause_unpause =
  in_sim (fun () ->
      let machine = Machine.create () in
      let engine = Docker.create machine in
      match
        Docker.run engine ~image:Layers.alpine_noop ~name:"c" ()
      with
      | Error _ -> Alcotest.fail "run failed"
      | Ok c ->
          let t0 = Engine.now () in
          Docker.pause engine c;
          Alcotest.(check bool) "paused" true (Docker.is_paused c);
          Docker.unpause engine c;
          Alcotest.(check bool) "unpaused" false (Docker.is_paused c);
          let dt = Engine.now () -. t0 in
          Alcotest.(check bool)
            (Printf.sprintf "pause/unpause fast (%.1fms)" (dt *. 1e3))
            true (dt < 0.05))

let test_docker_memory_scaling =
  in_sim (fun () ->
      let machine = Machine.create () in
      let engine = Docker.create machine in
      let before = Docker.rss_kb engine in
      for i = 1 to 100 do
        match
          Docker.run engine ~image:Layers.micropython_image
            ~name:(Printf.sprintf "c%d" i) ()
        with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "run failed"
      done;
      let per_container = (Docker.rss_kb engine - before) / 100 in
      (* Fig 14: ~5 GB at 1000 containers -> ~4-5 MB each. *)
      Alcotest.(check bool)
        (Printf.sprintf "rss per container ~4MB (%d kb)" per_container)
        true
        (per_container > 3_000 && per_container < 6_000);
      Alcotest.(check bool) "thin pool reserved in chunks" true
        (Docker.reserved_kb engine >= 100 * 40 * 1024))

let test_docker_wedges_when_full =
  in_sim (fun () ->
      (* Small host: 4 GB; pool chunks are 8 GB so the first growth
         already fails. *)
      let platform = { Params.xeon_e5_1630 with Params.ram_mb = 4096 } in
      let machine = Machine.create ~platform () in
      let engine = Docker.create machine in
      (match
         Docker.run engine ~image:Layers.alpine_noop ~name:"c0" ()
       with
      | Error Docker.Out_of_memory -> ()
      | Error Docker.Engine_wedged -> Alcotest.fail "wedged too early"
      | Ok _ -> Alcotest.fail "run should have failed");
      Alcotest.(check bool) "engine wedged" true (Docker.wedged engine);
      match Docker.run engine ~image:Layers.alpine_noop ~name:"c1" () with
      | Error Docker.Engine_wedged -> ()
      | _ -> Alcotest.fail "wedged engine accepted work")

let test_docker_stop_releases =
  in_sim (fun () ->
      let machine = Machine.create () in
      let engine = Docker.create machine in
      match
        Docker.run engine ~image:Layers.alpine_noop ~name:"c" ()
      with
      | Error _ -> Alcotest.fail "run failed"
      | Ok c ->
          let with_c = Docker.rss_kb engine in
          Docker.stop engine c;
          Alcotest.(check int) "running count" 0 (Docker.running engine);
          Alcotest.(check bool) "rss dropped" true
            (Docker.rss_kb engine < with_c))

(* ------------------------------------------------------------------ *)
(* Processes *)

let test_process_create_times =
  in_sim (fun () ->
      let machine = Machine.create () in
      let procs = Process.create machine ~rng:(Rng.create 42L) in
      let times =
        List.init 300 (fun i ->
            let t0 = Engine.now () in
            ignore
              (Process.fork_exec procs ~name:(Printf.sprintf "p%d" i) ());
            Engine.now () -. t0)
      in
      let mean =
        List.fold_left ( +. ) 0. times /. float_of_int (List.length times)
      in
      let p90 = Lightvm_metrics.Stats.percentile times 90. in
      (* Paper: 3.5 ms average, 9 ms at the 90th percentile. *)
      Alcotest.(check bool)
        (Printf.sprintf "mean ~3.5ms (%.2fms)" (mean *. 1e3))
        true
        (mean > 0.002 && mean < 0.006);
      Alcotest.(check bool)
        (Printf.sprintf "p90 heavy tail (%.2fms)" (p90 *. 1e3))
        true
        (p90 > mean && p90 < 0.015))

let test_process_kill =
  in_sim (fun () ->
      let machine = Machine.create () in
      let procs = Process.create machine ~rng:(Rng.create 1L) in
      let p = Process.fork_exec procs ~name:"x" () in
      Alcotest.(check int) "running" 1 (Process.running procs);
      Alcotest.(check bool) "rss accounted" true (Process.rss_kb procs > 0);
      Process.kill procs p;
      Alcotest.(check int) "gone" 0 (Process.running procs);
      Alcotest.(check int) "rss freed" 0 (Process.rss_kb procs))

let suites =
  [
    ( "container.layers",
      [ Alcotest.test_case "sharing" `Quick test_layer_sharing ] );
    ( "container.docker",
      [
        Alcotest.test_case "run time" `Quick test_docker_run_time;
        Alcotest.test_case "pause/unpause" `Quick
          test_docker_pause_unpause;
        Alcotest.test_case "memory scaling" `Quick
          test_docker_memory_scaling;
        Alcotest.test_case "wedges when full" `Quick
          test_docker_wedges_when_full;
        Alcotest.test_case "stop releases" `Quick
          test_docker_stop_releases;
      ] );
    ( "container.process",
      [
        Alcotest.test_case "create times" `Quick
          test_process_create_times;
        Alcotest.test_case "kill" `Quick test_process_kill;
      ] );
  ]
