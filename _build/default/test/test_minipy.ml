(* Tests for the mini-Python lexer, parser and interpreter. *)

module Lexer = Lightvm_minipy.Lexer
module Parser = Lightvm_minipy.Parser
module Interp = Lightvm_minipy.Interp
module Value = Lightvm_minipy.Value

let run src =
  match Interp.run src with
  | Ok outcome -> outcome
  | Error msg -> Alcotest.failf "program failed: %s" msg

let output src = (run src).Interp.stdout

let check_output name src expected =
  Alcotest.(check (list string)) name expected (output src)

(* ------------------------------------------------------------------ *)

let test_lexer_basics () =
  let toks = Lexer.tokenize "x = 1 + 2.5  # comment\n" in
  Alcotest.(check (list string))
    "token stream"
    [ "NAME(x)"; "OP(=)"; "INT(1)"; "OP(+)"; "FLOAT(2.5)"; "NEWLINE";
      "EOF" ]
    (List.map Lexer.token_to_string toks)

let test_lexer_indentation () =
  let toks = Lexer.tokenize "if x:\n    y = 1\nz = 2\n" in
  let names = List.map Lexer.token_to_string toks in
  Alcotest.(check bool) "has INDENT" true (List.mem "INDENT" names);
  Alcotest.(check bool) "has DEDENT" true (List.mem "DEDENT" names)

let test_lexer_string_escapes () =
  match Lexer.tokenize {|s = "a\nb"|} with
  | [ _; _; Lexer.STRING s; _; _ ] ->
      Alcotest.(check string) "escape" "a\nb" s
  | toks ->
      Alcotest.failf "unexpected tokens: %s"
        (String.concat " " (List.map Lexer.token_to_string toks))

let test_lexer_errors () =
  (try
     ignore (Lexer.tokenize "x = $\n");
     Alcotest.fail "bad character accepted"
   with Lexer.Lex_error _ -> ());
  try
    ignore (Lexer.tokenize "s = \"unterminated\n");
    Alcotest.fail "unterminated string accepted"
  with Lexer.Lex_error _ -> ()

let test_arithmetic () =
  check_output "ints" "print(2 + 3 * 4)" [ "14" ];
  check_output "parens" "print((2 + 3) * 4)" [ "20" ];
  check_output "floats" "print(7 / 2)" [ "3.5" ];
  check_output "floordiv" "print(7 // 2)" [ "3" ];
  check_output "neg floordiv" "print(-7 // 2)" [ "-4" ];
  check_output "mod" "print(7 % 3)" [ "1" ];
  check_output "python mod" "print(-1 % 5)" [ "4" ];
  check_output "power" "print(2 ** 10)" [ "1024" ];
  check_output "power right assoc" "print(2 ** 3 ** 2)" [ "512" ];
  check_output "unary" "print(-3 + 1)" [ "-2" ]

let test_strings () =
  check_output "concat" {|print("foo" + "bar")|} [ "foobar" ];
  check_output "repeat" {|print("ab" * 3)|} [ "ababab" ];
  check_output "len" {|print(len("hello"))|} [ "5" ];
  check_output "index" {|print("hello"[1])|} [ "e" ];
  check_output "negative index" {|print("hello"[-1])|} [ "o" ];
  check_output "methods" {|print("Hi".upper(), "Hi".lower())|}
    [ "HI hi" ]

let test_comparisons_and_bool () =
  check_output "chain of ops"
    "print(1 < 2, 2 <= 2, 3 > 4, 1 == 1.0, 1 != 2)"
    [ "True True False True True" ];
  check_output "and/or shortcut" "print(False and undefined_name or 7)"
    [ "7" ];
  check_output "not" "print(not 0, not 1)" [ "True False" ]

let test_lists () =
  check_output "literals" "print([1, 2, 3])" [ "[1, 2, 3]" ];
  check_output "append"
    "xs = []\nxs.append(1)\nxs.append(2)\nprint(xs, len(xs))"
    [ "[1, 2] 2" ];
  check_output "index assign" "xs = [1, 2, 3]\nxs[1] = 9\nprint(xs)"
    [ "[1, 9, 3]" ];
  check_output "pop" "xs = [1, 2]\nprint(xs.pop())\nprint(xs)"
    [ "2"; "[1]" ];
  check_output "sum/min/max" "print(sum([1, 2, 3]), min(4, 2), max([5, 9]))"
    [ "6 2 9" ]

let test_control_flow () =
  check_output "if/elif/else"
    "x = 5\nif x < 3:\n    print(\"low\")\nelif x < 10:\n    print(\"mid\")\nelse:\n    print(\"high\")"
    [ "mid" ];
  check_output "while with break"
    "i = 0\nwhile True:\n    i += 1\n    if i == 4:\n        break\nprint(i)"
    [ "4" ];
  check_output "continue"
    "total = 0\nfor i in range(6):\n    if i % 2 == 0:\n        continue\n    total += i\nprint(total)"
    [ "9" ];
  check_output "range forms"
    "print(range(3), range(2, 5), range(10, 0, -3))"
    [ "[0, 1, 2] [2, 3, 4] [10, 7, 4, 1]" ]

let test_functions () =
  check_output "def and call"
    "def add(a, b):\n    return a + b\nprint(add(2, 3))" [ "5" ];
  check_output "recursion"
    "def fib(n):\n    if n < 2:\n        return n\n    return fib(n - 1) + fib(n - 2)\nprint(fib(12))"
    [ "144" ];
  check_output "locals do not leak"
    "def f():\n    inner = 42\n    return inner\nprint(f())\nx = 0\nprint(x)"
    [ "42"; "0" ];
  check_output "return none" "def f():\n    return\nprint(f())" [ "None" ]

let test_approx_e () =
  (* The paper's Lambda workload: approximating e. *)
  let src =
    {|
def approx_e(n):
    total = 0.0
    fact = 1.0
    i = 0
    while i <= n:
        if i > 0:
            fact = fact * i
        total = total + 1.0 / fact
        i = i + 1
    return total

print(approx_e(18))
|}
  in
  match (run src).Interp.stdout with
  | [ line ] ->
      let v = float_of_string line in
      if Float.abs (v -. Float.exp 1.) > 1e-9 then
        Alcotest.failf "bad e approximation: %s" line
  | other ->
      Alcotest.failf "unexpected output: %s" (String.concat "|" other)

(* Simple substring check without extra deps. *)
let astring_contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > hn then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0

let test_errors () =
  let expect_error src fragment =
    match Interp.run src with
    | Ok _ -> Alcotest.failf "no error for: %s" src
    | Error msg ->
        if not (astring_contains msg fragment) then
          Alcotest.failf "error %S lacks %S" msg fragment
  in
  expect_error "print(1 / 0)" "division by zero";
  expect_error "print(undefined)" "not defined";
  expect_error "xs = [1]\nprint(xs[5])" "out of range";
  expect_error "def f(a):\n    return a\nf(1, 2)" "arguments";
  expect_error "print(" "syntax error";
  expect_error "if True:\nprint(1)" "syntax error";
  expect_error "x = 'a' - 'b'" "unsupported"

let test_step_limit () =
  match Interp.run ~max_steps:1000 "while True:\n    pass" with
  | Error "step limit exceeded" -> ()
  | Ok _ -> Alcotest.fail "infinite loop terminated?!"
  | Error other -> Alcotest.failf "wrong error: %s" other

let test_steps_scale_with_work () =
  let steps n =
    let src =
      Printf.sprintf "i = 0\nwhile i < %d:\n    i = i + 1\n" n
    in
    (run src).Interp.steps
  in
  let s100 = steps 100 and s1000 = steps 1000 in
  let ratio = float_of_int s1000 /. float_of_int s100 in
  if ratio < 8. || ratio > 12. then
    Alcotest.failf "steps not linear in work: %d vs %d" s100 s1000

let prop_arith_matches_ocaml =
  QCheck.Test.make ~name:"minipy integer arithmetic matches OCaml"
    ~count:200
    QCheck.(triple (int_range (-1000) 1000) (int_range (-1000) 1000)
              (int_range 0 2))
    (fun (a, b, opi) ->
      let op, f =
        match opi with
        | 0 -> ("+", ( + ))
        | 1 -> ("-", ( - ))
        | _ -> ("*", ( * ))
      in
      let src = Printf.sprintf "print(%d %s %d)" a op b in
      match Interp.run src with
      | Ok { Interp.stdout = [ line ]; _ } ->
          int_of_string line = f a b
      | _ -> false)

let suites =
  [
    ( "minipy.lexer",
      [
        Alcotest.test_case "basics" `Quick test_lexer_basics;
        Alcotest.test_case "indentation" `Quick test_lexer_indentation;
        Alcotest.test_case "string escapes" `Quick
          test_lexer_string_escapes;
        Alcotest.test_case "errors" `Quick test_lexer_errors;
      ] );
    ( "minipy.eval",
      [
        Alcotest.test_case "arithmetic" `Quick test_arithmetic;
        Alcotest.test_case "strings" `Quick test_strings;
        Alcotest.test_case "comparisons/bool" `Quick
          test_comparisons_and_bool;
        Alcotest.test_case "lists" `Quick test_lists;
        Alcotest.test_case "control flow" `Quick test_control_flow;
        Alcotest.test_case "functions" `Quick test_functions;
        Alcotest.test_case "approximates e" `Quick test_approx_e;
        Alcotest.test_case "errors" `Quick test_errors;
        Alcotest.test_case "step limit" `Quick test_step_limit;
        Alcotest.test_case "steps linear" `Quick
          test_steps_scale_with_work;
        QCheck_alcotest.to_alcotest prop_arith_matches_ocaml;
      ] );
  ]
