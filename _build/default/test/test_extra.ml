(* A second round of edge-case tests across the stack: wire-level
   transactions, interpreter corners, toolstack mode combinations, and
   ablation/aux experiment sanity. *)

module Engine = Lightvm_sim.Engine
module Xs_server = Lightvm_xenstore.Xs_server
module Xs_wire = Lightvm_xenstore.Xs_wire
module Xs_costs = Lightvm_xenstore.Xs_costs
module Interp = Lightvm_minipy.Interp
module Image = Lightvm_guest.Image
module Mode = Lightvm_toolstack.Mode
module Costs = Lightvm_toolstack.Costs
module Toolstack = Lightvm_toolstack.Toolstack
module Create = Lightvm_toolstack.Create
module Guest = Lightvm_guest.Guest
module Xen = Lightvm_hv.Xen
module Table = Lightvm_metrics.Table
module E = Lightvm.Experiment

let in_sim f () = ignore (Engine.run f)

(* ------------------------------------------------------------------ *)
(* Transactions over the wire protocol *)

let test_wire_transaction =
  in_sim (fun () ->
      let srv = Xs_server.create () in
      let send ?(tx = 0l) op args =
        Xs_server.handle_packet srv ~caller:0
          (Xs_wire.pack op ~req_id:1l ~tx_id:tx args)
      in
      (* Start a transaction. *)
      let _, args = Xs_wire.unpack (send Xs_wire.Transaction_start []) in
      let txid =
        match args with
        | [ id ] -> Int32.of_string id
        | _ -> Alcotest.fail "no txid"
      in
      (* Write inside it; invisible outside until commit. *)
      ignore (send ~tx:txid Xs_wire.Write [ "/wtx/a"; "1" ]);
      let header, _ = Xs_wire.unpack (send Xs_wire.Read [ "/wtx/a" ]) in
      Alcotest.(check bool) "invisible before commit" true
        (header.Xs_wire.op = Xs_wire.Error);
      (* Commit ("T") and read back. *)
      let header, _ =
        Xs_wire.unpack (send ~tx:txid Xs_wire.Transaction_end [ "T" ])
      in
      Alcotest.(check bool) "commit ok" true
        (header.Xs_wire.op = Xs_wire.Transaction_end);
      let _, args = Xs_wire.unpack (send Xs_wire.Read [ "/wtx/a" ]) in
      Alcotest.(check (list string)) "visible after commit" [ "1" ] args)

let test_wire_transaction_abort =
  in_sim (fun () ->
      let srv = Xs_server.create () in
      let send ?(tx = 0l) op args =
        Xs_server.handle_packet srv ~caller:0
          (Xs_wire.pack op ~req_id:1l ~tx_id:tx args)
      in
      let _, args = Xs_wire.unpack (send Xs_wire.Transaction_start []) in
      let txid = Int32.of_string (List.hd args) in
      ignore (send ~tx:txid Xs_wire.Write [ "/wtx/b"; "1" ]);
      (* Abort ("F"): nothing lands. *)
      ignore (send ~tx:txid Xs_wire.Transaction_end [ "F" ]);
      let header, _ = Xs_wire.unpack (send Xs_wire.Read [ "/wtx/b" ]) in
      Alcotest.(check bool) "aborted write gone" true
        (header.Xs_wire.op = Xs_wire.Error))

let test_wire_get_domain_path =
  in_sim (fun () ->
      let srv = Xs_server.create () in
      let reply =
        Xs_server.handle_packet srv ~caller:3
          (Xs_wire.pack Xs_wire.Get_domain_path ~req_id:9l ~tx_id:0l
             [ "3" ])
      in
      let header, args = Xs_wire.unpack reply in
      Alcotest.(check int32) "req id" 9l header.Xs_wire.req_id;
      Alcotest.(check (list string)) "path" [ "/local/domain/3" ] args)

(* ------------------------------------------------------------------ *)
(* Interpreter corners *)

let run_ok src =
  match Interp.run src with
  | Ok o -> o
  | Error msg -> Alcotest.failf "program failed: %s" msg

let test_minipy_for_over_string () =
  let o = run_ok "s = \"\"\nfor c in \"abc\":\n    s = c + s\nprint(s)" in
  Alcotest.(check (list string)) "reversed" [ "cba" ] o.Interp.stdout

let test_minipy_nested_calls () =
  let src =
    "def twice(x):\n    return x * 2\n\
     def compose(x):\n    return twice(twice(x)) + 1\n\
     print(compose(10))"
  in
  Alcotest.(check (list string)) "nested" [ "41" ]
    (run_ok src).Interp.stdout

let test_minipy_aug_index () =
  let src = "xs = [1, 2, 3]\nxs[0] += 10\nprint(xs)" in
  Alcotest.(check (list string)) "aug index" [ "[11, 2, 3]" ]
    (run_ok src).Interp.stdout

let test_minipy_negative_index_assign () =
  let src = "xs = [1, 2, 3]\nxs[-1] = 9\nprint(xs)" in
  Alcotest.(check (list string)) "neg index" [ "[1, 2, 9]" ]
    (run_ok src).Interp.stdout

let test_minipy_minmax_varargs () =
  Alcotest.(check (list string)) "min/max" [ "1 9" ]
    (run_ok "print(min(3, 1, 2), max(3, 9, 2))").Interp.stdout

let test_minipy_float_pow_and_mod () =
  let o = run_ok "print(2.0 ** -1, 5.5 % 2)" in
  Alcotest.(check (list string)) "floats" [ "0.5 1.5" ] o.Interp.stdout

let test_minipy_string_compare () =
  Alcotest.(check (list string)) "lexicographic" [ "True False" ]
    (run_ok {|print("abc" < "abd", "b" < "a")|}).Interp.stdout

let test_minipy_recursion_limit_via_steps () =
  match
    Interp.run ~max_steps:10_000
      "def loop(n):\n    return loop(n + 1)\nloop(0)"
  with
  | Error "step limit exceeded" -> ()
  | Ok _ -> Alcotest.fail "infinite recursion returned"
  | Error other -> Alcotest.failf "wrong error: %s" other

(* ------------------------------------------------------------------ *)
(* Toolstack mode matrix *)

let lifecycle mode image ~nics ~disks =
  in_sim (fun () ->
      let xen = Xen.boot () in
      let ts = Toolstack.make ~xen ~mode () in
      let cfg =
        Lightvm_toolstack.Vmconfig.for_image ~nics ~disks ~name:"m" image
      in
      let created = Toolstack.create_vm_exn ts cfg in
      Guest.wait_ready created.Create.guest;
      Toolstack.destroy_vm ts created;
      (* Let any background shell refill settle before the census. *)
      Engine.sleep 2.0;
      Alcotest.(check int) "clean teardown" (Toolstack.shell_count ts)
        (Xen.guest_count xen))

let mode_matrix_cases =
  List.concat_map
    (fun (mode_name, mode) ->
      List.map
        (fun (img_name, image, nics, disks) ->
          Alcotest.test_case
            (Printf.sprintf "%s/%s" mode_name img_name)
            `Quick
            (lifecycle mode image ~nics ~disks))
        [
          ("debian+disk", Image.debian, 1, 1);
          ("tinyx", Image.tinyx, 1, 0);
          ("no-devices", Image.noop_unikernel, 0, 0);
          ("two-nics", Image.daytime, 2, 0);
        ])
    [
      ("xl", Mode.xl);
      ("chaos-xs", Mode.chaos_xs);
      ("lightvm", Mode.lightvm);
    ]

(* ------------------------------------------------------------------ *)
(* Aux experiments *)

let test_ablation_ordering () =
  let series = E.ablation_xenstore ~n:60 () in
  let last label =
    match
      List.find_opt (fun (l : E.labelled) -> l.E.label = label) series
    with
    | Some l -> (
        match Lightvm_metrics.Series.last_y l.E.series with
        | Some y -> y
        | None -> Alcotest.fail "empty")
    | None -> Alcotest.failf "missing %s" label
  in
  Alcotest.(check bool) "cxenstored slower" true
    (last "cxenstored" > 1.2 *. last "oxenstored");
  Alcotest.(check bool) "logging does not change steady cost" true
    (Float.abs (last "oxenstored" -. last "oxenstored, logging off")
    < 0.02 *. last "oxenstored")

let test_wan_migration_table () =
  let table = E.wan_migration () in
  Alcotest.(check int) "three guests" 3 (List.length (Table.rows table));
  List.iter
    (fun row ->
      match row with
      | [ _; _; ms ] ->
          let v = float_of_string ms in
          Alcotest.(check bool)
            (Printf.sprintf "wan migration %.0f ms in [60, 250]" v)
            true
            (v > 60. && v < 250.)
      | _ -> Alcotest.fail "bad row")
    (Table.rows table)

let test_pause_unpause_table () =
  let table = E.pause_unpause () in
  match Table.rows table with
  | [ [ _; vm_pause; _ ]; [ _; c_pause; _ ] ] ->
      Alcotest.(check bool) "hypercall pause cheaper than freezer" true
        (float_of_string vm_pause < float_of_string c_pause)
  | _ -> Alcotest.fail "bad table shape"

let test_sysctl_in_devpage =
  in_sim (fun () ->
      let xen = Xen.boot () in
      let ts = Toolstack.make ~xen ~mode:Mode.lightvm () in
      let cfg =
        Lightvm_toolstack.Vmconfig.for_image ~name:"s" Image.daytime
      in
      let created = Toolstack.create_vm_exn ts cfg in
      Guest.wait_ready created.Create.guest;
      match
        Lightvm_hv.Devpage.find (Xen.devpage xen) ~caller:0
          ~domid:created.Create.domid ~kind:Lightvm_hv.Devpage.Sysctl
          ~devid:0
      with
      | Ok entry ->
          Alcotest.(check int) "backend is dom0" 0
            entry.Lightvm_hv.Devpage.backend_domid
      | Error _ -> Alcotest.fail "sysctl device missing from device page")

let suites =
  [
    ( "xenstore.wire-tx",
      [
        Alcotest.test_case "transaction commit" `Quick
          test_wire_transaction;
        Alcotest.test_case "transaction abort" `Quick
          test_wire_transaction_abort;
        Alcotest.test_case "get domain path" `Quick
          test_wire_get_domain_path;
      ] );
    ( "minipy.corners",
      [
        Alcotest.test_case "for over string" `Quick
          test_minipy_for_over_string;
        Alcotest.test_case "nested calls" `Quick test_minipy_nested_calls;
        Alcotest.test_case "augmented index" `Quick test_minipy_aug_index;
        Alcotest.test_case "negative index assign" `Quick
          test_minipy_negative_index_assign;
        Alcotest.test_case "min/max varargs" `Quick
          test_minipy_minmax_varargs;
        Alcotest.test_case "float pow/mod" `Quick
          test_minipy_float_pow_and_mod;
        Alcotest.test_case "string compare" `Quick
          test_minipy_string_compare;
        Alcotest.test_case "recursion hits step limit" `Quick
          test_minipy_recursion_limit_via_steps;
      ] );
    ("toolstack.matrix", mode_matrix_cases);
    ( "experiment.aux",
      [
        Alcotest.test_case "ablation ordering" `Quick
          test_ablation_ordering;
        Alcotest.test_case "wan migration" `Quick test_wan_migration_table;
        Alcotest.test_case "pause/unpause" `Quick test_pause_unpause_table;
        Alcotest.test_case "sysctl in device page" `Quick
          test_sysctl_in_devpage;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Small modules: Time, Mode, Hotplug estimates *)

module Time = Lightvm_sim.Time
module Hotplug = Lightvm_toolstack.Hotplug
module Device = Lightvm_guest.Device

let test_time_units () =
  Alcotest.(check (float 1e-12)) "us" 2.5e-6 (Time.us 2.5);
  Alcotest.(check (float 1e-12)) "ms" 2.5e-3 (Time.ms 2.5);
  Alcotest.(check (float 1e-12)) "s" 2.5 (Time.s 2.5);
  Alcotest.(check (float 1e-9)) "to_ms" 1500. (Time.to_ms 1.5);
  Alcotest.(check (float 1e-6)) "to_us" 1.5e6 (Time.to_us 1.5);
  Alcotest.(check string) "pp" "2.312ms"
    (Format.asprintf "%a" Time.pp_ms 0.0023124)

let test_mode_names () =
  Alcotest.(check (list string))
    "figure 9 labels"
    [ "xl"; "chaos [XS]"; "chaos [XS+split]"; "chaos [NoXS]"; "LightVM" ]
    (List.map Mode.name Mode.all_modes);
  Alcotest.(check int) "five distinct modes" 5
    (List.length (List.sort_uniq compare Mode.all_modes))

let test_hotplug_estimates () =
  let costs = Costs.default in
  let vif = Device.vif ~devid:0 () in
  let vbd = Device.vbd ~devid:0 () in
  let script k = Hotplug.estimate Mode.Script ~costs k in
  let xendevd k = Hotplug.estimate Mode.Xendevd ~costs k in
  Alcotest.(check bool) "scripts take tens of ms (paper 5.3)" true
    (script vif > 0.02 && script vbd > script vif);
  Alcotest.(check bool) "xendevd well under a ms x50" true
    (xendevd vif < 0.001 && xendevd vif < script vif /. 50.)

let prop_ps_fairness =
  (* K equal jobs started together on one core finish simultaneously. *)
  QCheck.Test.make ~name:"processor sharing is fair for equal jobs"
    ~count:50
    QCheck.(pair (int_range 2 10) (float_bound_exclusive 1.0))
    (fun (k, w) ->
      let w = w +. 0.01 in
      let finishes = ref [] in
      ignore
        (Engine.run (fun () ->
             let cpu = Lightvm_sim.Cpu.create ~ncores:1 () in
             for _ = 1 to k do
               Engine.spawn (fun () ->
                   Lightvm_sim.Cpu.consume cpu ~core:0 w;
                   finishes := Engine.now () :: !finishes)
             done));
      List.length !finishes = k
      && List.for_all
           (fun t -> Float.abs (t -. (w *. float_of_int k)) < 1e-9)
           !finishes)

let small_modules_suite =
  ( "extra.small-modules",
    [
      Alcotest.test_case "time units" `Quick test_time_units;
      Alcotest.test_case "mode names" `Quick test_mode_names;
      Alcotest.test_case "hotplug estimates" `Quick test_hotplug_estimates;
      QCheck_alcotest.to_alcotest prop_ps_fairness;
    ] )

let suites = suites @ [ small_modules_suite ]
