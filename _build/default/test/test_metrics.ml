(* Tests for the metrics library: stats, series, tables, CDFs. *)

module Stats = Lightvm_metrics.Stats
module Series = Lightvm_metrics.Series
module Table = Lightvm_metrics.Table
module Cdf = Lightvm_metrics.Cdf

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_streaming () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 5. (Stats.mean s);
  (* Sample variance of this classic dataset: 32/7. *)
  Alcotest.(check (float 1e-9)) "variance" (32. /. 7.) (Stats.variance s);
  Alcotest.(check (float 1e-9)) "min" 2. (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 9. (Stats.max_value s);
  Alcotest.(check (float 1e-9)) "sum" 40. (Stats.sum s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 0.)) "mean of empty" 0. (Stats.mean s);
  Alcotest.(check (float 0.)) "variance of empty" 0. (Stats.variance s)

let test_percentiles () =
  let samples = [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. ] in
  Alcotest.(check (float 1e-9)) "median" 5.5 (Stats.median samples);
  Alcotest.(check (float 1e-9)) "p0" 1. (Stats.percentile samples 0.);
  Alcotest.(check (float 1e-9)) "p100" 10. (Stats.percentile samples 100.);
  Alcotest.(check (float 1e-9)) "p90 interpolates" 9.1
    (Stats.percentile samples 90.);
  Alcotest.(check (float 1e-9)) "singleton" 42.
    (Stats.percentile [ 42. ] 75.);
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Stats.percentile: empty sample list") (fun () ->
      ignore (Stats.percentile [] 50.));
  Alcotest.check_raises "bad p rejected"
    (Invalid_argument "Stats.percentile: p outside [0, 100]") (fun () ->
      ignore (Stats.percentile [ 1. ] 150.))

let prop_welford_matches_naive =
  QCheck.Test.make ~name:"welford mean/variance match the naive formulas"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_exclusive 100.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
        /. (n -. 1.)
      in
      feq ~eps:1e-6 (Stats.mean s) mean
      && feq ~eps:1e-6 (Stats.variance s) var)

(* ------------------------------------------------------------------ *)
(* Series *)

let test_series_basics () =
  let s = Series.create ~unit_label:"ms" ~name:"test" () in
  Series.add s ~x:1. ~y:10.;
  Series.add s ~x:2. ~y:30.;
  Series.add s ~x:3. ~y:20.;
  Alcotest.(check int) "length" 3 (Series.length s);
  Alcotest.(check string) "name" "test" (Series.name s);
  Alcotest.(check (option (float 1e-9))) "last y" (Some 20.)
    (Series.last_y s);
  Alcotest.(check (float 1e-9)) "max" 30. (Series.max_y s);
  Alcotest.(check (float 1e-9)) "min" 10. (Series.min_y s);
  Alcotest.(check (option (float 1e-9))) "y_at" (Some 30.)
    (Series.y_at s ~x:2.);
  Alcotest.(check (option (float 1e-9))) "y_at miss" None
    (Series.y_at s ~x:9.)

let test_series_sample () =
  let s = Series.create ~name:"s" () in
  for i = 1 to 10 do
    Series.add s ~x:(float_of_int i) ~y:0.
  done;
  let sampled = Series.sample s ~every:3 in
  Alcotest.(check (list (float 1e-9)))
    "every 3rd plus last" [ 1.; 4.; 7.; 10. ]
    (List.map fst sampled)

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "x"; "y" ];
  Table.add_rowf t [ 1.5; 2. ];
  Alcotest.(check int) "rows" 2 (List.length (Table.rows t));
  let rendered = Table.to_string t in
  Alcotest.(check bool) "contains title" true
    (String.length rendered > 0
    && Astring_check.contains rendered "== T ==");
  Alcotest.(check bool) "contains cells" true
    (Astring_check.contains rendered "1.5");
  Alcotest.check_raises "arity enforced"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "only-one" ])

(* ------------------------------------------------------------------ *)
(* Cdf *)

let test_cdf () =
  let cdf = Cdf.of_samples [ 3.; 1.; 2.; 4. ] in
  Alcotest.(check int) "count" 4 (Cdf.count cdf);
  Alcotest.(check (float 1e-9)) "at below" 0. (Cdf.at cdf 0.5);
  Alcotest.(check (float 1e-9)) "at mid" 0.5 (Cdf.at cdf 2.);
  Alcotest.(check (float 1e-9)) "at top" 1. (Cdf.at cdf 10.);
  Alcotest.(check (float 1e-9)) "quantile 0" 1. (Cdf.quantile cdf 0.);
  Alcotest.(check (float 1e-9)) "quantile 1" 4. (Cdf.quantile cdf 1.);
  Alcotest.(check int) "points" 4 (List.length (Cdf.points cdf))

let prop_cdf_monotone =
  QCheck.Test.make ~name:"cdf is monotone and ends at 1" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 40) (float_bound_exclusive 10.))
    (fun xs ->
      let cdf = Cdf.of_samples xs in
      let pts = Cdf.points cdf in
      let rec monotone = function
        | (x1, f1) :: ((x2, f2) :: _ as rest) ->
            x1 <= x2 && f1 <= f2 && monotone rest
        | _ -> true
      in
      monotone pts
      && feq (snd (List.nth pts (List.length pts - 1))) 1.)

let suites =
  [
    ( "metrics.stats",
      [
        Alcotest.test_case "streaming" `Quick test_stats_streaming;
        Alcotest.test_case "empty" `Quick test_stats_empty;
        Alcotest.test_case "percentiles" `Quick test_percentiles;
        QCheck_alcotest.to_alcotest prop_welford_matches_naive;
      ] );
    ( "metrics.series",
      [
        Alcotest.test_case "basics" `Quick test_series_basics;
        Alcotest.test_case "sample" `Quick test_series_sample;
      ] );
    ( "metrics.table", [ Alcotest.test_case "render" `Quick test_table ] );
    ( "metrics.cdf",
      [
        Alcotest.test_case "basics" `Quick test_cdf;
        QCheck_alcotest.to_alcotest prop_cdf_monotone;
      ] );
  ]
