(* Tests for the hypervisor substrate: frames, event channels, grant
   tables, noxs device pages, and the Xen facade. *)

module Engine = Lightvm_sim.Engine
module Frames = Lightvm_hv.Frames
module Evtchn = Lightvm_hv.Evtchn
module Gnttab = Lightvm_hv.Gnttab
module Devpage = Lightvm_hv.Devpage
module Domain = Lightvm_hv.Domain
module Params = Lightvm_hv.Params
module Xen = Lightvm_hv.Xen

let in_sim f () = ignore (Engine.run f)

(* ------------------------------------------------------------------ *)
(* Frames *)

let test_frames_alloc_free () =
  let f = Frames.create ~total_kb:1024 in
  Alcotest.(check int) "total" 1024 (Frames.total_kb f);
  Alcotest.(check bool) "alloc ok" true (Frames.alloc f ~owner:1 ~kb:512 = Ok ());
  Alcotest.(check int) "used" 512 (Frames.used_kb f);
  Alcotest.(check int) "owned" 512 (Frames.owned_kb f ~owner:1);
  Alcotest.(check bool) "exhaustion" true
    (Frames.alloc f ~owner:2 ~kb:600 = Error Frames.ENOMEM);
  Frames.free f ~owner:1 ~kb:512;
  Alcotest.(check int) "freed" 0 (Frames.used_kb f)

let test_frames_rounding () =
  let f = Frames.create ~total_kb:1024 in
  (* 1 KB rounds up to one 4 KB frame. *)
  ignore (Frames.alloc f ~owner:1 ~kb:1);
  Alcotest.(check int) "rounded to frame" 4 (Frames.used_kb f)

let test_frames_free_all () =
  let f = Frames.create ~total_kb:4096 in
  ignore (Frames.alloc f ~owner:3 ~kb:100);
  ignore (Frames.alloc f ~owner:3 ~kb:200);
  ignore (Frames.alloc f ~owner:4 ~kb:400);
  let released = Frames.free_all f ~owner:3 in
  Alcotest.(check int) "released" 300 released;
  Alcotest.(check int) "other untouched" 400 (Frames.owned_kb f ~owner:4)

let test_frames_over_free () =
  let f = Frames.create ~total_kb:1024 in
  ignore (Frames.alloc f ~owner:1 ~kb:8);
  match Frames.free f ~owner:1 ~kb:64 with
  | () -> Alcotest.fail "over-free accepted"
  | exception Invalid_argument _ -> ()

let prop_frames_conservation =
  QCheck.Test.make ~name:"frame allocator conserves memory" ~count:100
    QCheck.(list (pair (int_range 1 5) (int_range 1 64)))
    (fun script ->
      let f = Frames.create ~total_kb:4096 in
      List.iter
        (fun (owner, kb) -> ignore (Frames.alloc f ~owner ~kb:(kb * 4)))
        script;
      let by_owner =
        List.fold_left (fun acc (_, kb) -> acc + kb) 0 (Frames.owners f)
      in
      by_owner = Frames.used_kb f
      && Frames.used_kb f + Frames.free_kb f = Frames.total_kb f)

(* ------------------------------------------------------------------ *)
(* Event channels *)

let test_evtchn_lifecycle =
  in_sim (fun () ->
      let e = Evtchn.create () in
      let backend_port = Evtchn.alloc_unbound e ~domid:0 ~remote:5 in
      let guest_port =
        match
          Evtchn.bind_interdomain e ~domid:5 ~remote:0
            ~remote_port:backend_port
        with
        | Ok p -> p
        | Error _ -> Alcotest.fail "bind failed"
      in
      let guest_got = ref 0 and backend_got = ref 0 in
      Evtchn.set_handler e ~domid:5 ~port:guest_port (fun () ->
          incr guest_got);
      Evtchn.set_handler e ~domid:0 ~port:backend_port (fun () ->
          incr backend_got);
      (* Backend notifies guest. *)
      Alcotest.(check bool) "notify ok" true
        (Evtchn.notify e ~domid:0 ~port:backend_port = Ok ());
      (* Guest notifies backend twice. *)
      ignore (Evtchn.notify e ~domid:5 ~port:guest_port);
      ignore (Evtchn.notify e ~domid:5 ~port:guest_port);
      Engine.sleep 0.001;
      Alcotest.(check int) "guest handler ran" 1 !guest_got;
      Alcotest.(check int) "backend handler ran" 2 !backend_got)

let test_evtchn_wrong_domain =
  in_sim (fun () ->
      let e = Evtchn.create () in
      let port = Evtchn.alloc_unbound e ~domid:0 ~remote:5 in
      match Evtchn.bind_interdomain e ~domid:6 ~remote:0 ~remote_port:port with
      | Error Evtchn.Wrong_domain -> ()
      | _ -> Alcotest.fail "wrong domain bound")

let test_evtchn_double_bind =
  in_sim (fun () ->
      let e = Evtchn.create () in
      let port = Evtchn.alloc_unbound e ~domid:0 ~remote:5 in
      ignore (Evtchn.bind_interdomain e ~domid:5 ~remote:0 ~remote_port:port);
      match Evtchn.bind_interdomain e ~domid:5 ~remote:0 ~remote_port:port with
      | Error Evtchn.Already_bound -> ()
      | _ -> Alcotest.fail "double bind accepted")

let test_evtchn_close_all =
  in_sim (fun () ->
      let e = Evtchn.create () in
      let p1 = Evtchn.alloc_unbound e ~domid:3 ~remote:0 in
      let _p2 = Evtchn.alloc_unbound e ~domid:3 ~remote:0 in
      ignore (Evtchn.bind_interdomain e ~domid:0 ~remote:3 ~remote_port:p1);
      Alcotest.(check int) "closed two" 2 (Evtchn.close_all e ~domid:3);
      Alcotest.(check (list int)) "none left" [] (Evtchn.ports_of e ~domid:3);
      (* Peer's port survives but is unbound. *)
      match Evtchn.ports_of e ~domid:0 with
      | [ p ] -> (
          match Evtchn.notify e ~domid:0 ~port:p with
          | Error Evtchn.Not_bound -> ()
          | _ -> Alcotest.fail "stale binding")
      | _ -> Alcotest.fail "peer port lost")

(* ------------------------------------------------------------------ *)
(* Grant tables *)

let test_gnttab_flow () =
  let g = Gnttab.create () in
  let gref = Gnttab.grant_access g ~owner:7 ~grantee:0 ~frame:1234 in
  (match Gnttab.map g ~grantee:0 ~owner:7 gref with
  | Ok frame -> Alcotest.(check int) "mapped frame" 1234 frame
  | Error _ -> Alcotest.fail "map failed");
  Alcotest.(check bool) "end while mapped refused" true
    (Gnttab.end_access g ~owner:7 gref = Error Gnttab.Still_mapped);
  Alcotest.(check bool) "unmap" true
    (Gnttab.unmap g ~grantee:0 ~owner:7 gref = Ok ());
  Alcotest.(check bool) "end after unmap" true
    (Gnttab.end_access g ~owner:7 gref = Ok ());
  Alcotest.(check bool) "ref retired" true
    (Gnttab.map g ~grantee:0 ~owner:7 gref = Error Gnttab.Invalid_ref)

let test_gnttab_wrong_grantee () =
  let g = Gnttab.create () in
  let gref = Gnttab.grant_access g ~owner:7 ~grantee:0 ~frame:1 in
  Alcotest.(check bool) "wrong grantee" true
    (Gnttab.map g ~grantee:9 ~owner:7 gref = Error Gnttab.Wrong_domain)

let test_gnttab_refcount () =
  let g = Gnttab.create () in
  let gref = Gnttab.grant_access g ~owner:7 ~grantee:0 ~frame:1 in
  ignore (Gnttab.map g ~grantee:0 ~owner:7 gref);
  ignore (Gnttab.map g ~grantee:0 ~owner:7 gref);
  Alcotest.(check int) "two mappings" 2 (Gnttab.mapped_count g ~owner:7 gref);
  ignore (Gnttab.unmap g ~grantee:0 ~owner:7 gref);
  Alcotest.(check int) "one left" 1 (Gnttab.mapped_count g ~owner:7 gref);
  Alcotest.(check bool) "still mapped" true
    (Gnttab.end_access g ~owner:7 gref = Error Gnttab.Still_mapped)

(* ------------------------------------------------------------------ *)
(* Device pages *)

let entry devid =
  {
    Devpage.kind = Devpage.Vif;
    devid;
    backend_domid = 0;
    grant_ref = 42;
    evtchn_port = 3;
  }

let test_devpage_flow () =
  let d = Devpage.create () in
  Devpage.setup d ~domid:4;
  Alcotest.(check bool) "dom0 writes" true
    (Devpage.write_entry d ~caller:0 ~domid:4 (entry 0) = Ok ());
  (match Devpage.read d ~caller:4 ~domid:4 with
  | Ok [ e ] -> Alcotest.(check int) "devid" 0 e.Devpage.devid
  | _ -> Alcotest.fail "guest read failed");
  Alcotest.(check bool) "guest cannot write" true
    (Devpage.write_entry d ~caller:4 ~domid:4 (entry 1)
    = Error Devpage.Access_denied);
  Alcotest.(check bool) "stranger cannot read" true
    (Devpage.read d ~caller:9 ~domid:4 = Error Devpage.Access_denied);
  Alcotest.(check bool) "find" true
    (match
       Devpage.find d ~caller:4 ~domid:4 ~kind:Devpage.Vif ~devid:0
     with
    | Ok e -> e.Devpage.grant_ref = 42
    | Error _ -> false)

let test_devpage_replace_and_remove () =
  let d = Devpage.create () in
  Devpage.setup d ~domid:4;
  ignore (Devpage.write_entry d ~caller:0 ~domid:4 (entry 0));
  ignore
    (Devpage.write_entry d ~caller:0 ~domid:4
       { (entry 0) with Devpage.grant_ref = 99 });
  (match Devpage.read d ~caller:0 ~domid:4 with
  | Ok [ e ] -> Alcotest.(check int) "replaced" 99 e.Devpage.grant_ref
  | _ -> Alcotest.fail "replace created duplicate");
  Alcotest.(check bool) "remove" true
    (Devpage.remove_entry d ~caller:0 ~domid:4 ~kind:Devpage.Vif ~devid:0
    = Ok ());
  Alcotest.(check bool) "remove again" true
    (Devpage.remove_entry d ~caller:0 ~domid:4 ~kind:Devpage.Vif ~devid:0
    = Error Devpage.No_entry)

let test_devpage_no_page () =
  let d = Devpage.create () in
  Alcotest.(check bool) "no page" true
    (Devpage.write_entry d ~caller:0 ~domid:9 (entry 0)
    = Error Devpage.No_page)

(* ------------------------------------------------------------------ *)
(* Xen facade *)

let test_xen_boot =
  in_sim (fun () ->
      let xen = Xen.boot () in
      Alcotest.(check int) "one domain (Dom0)" 1
        (List.length (Xen.domains xen));
      Alcotest.(check int) "no guests" 0 (Xen.guest_count xen);
      Alcotest.(check (list int)) "dom0 core" [ 0 ] (Xen.dom0_cores xen);
      Alcotest.(check (list int))
        "guest cores" [ 1; 2; 3 ] (Xen.guest_cores xen))

let test_xen_domain_lifecycle =
  in_sim (fun () ->
      let xen = Xen.boot () in
      let dom =
        match Xen.create_domain xen ~name:"g1" ~vcpus:1 ~mem_mb:8. with
        | Ok d -> d
        | Error _ -> Alcotest.fail "create failed"
      in
      let domid = Domain.domid dom in
      Alcotest.(check bool) "starts paused" true
        (Domain.state dom = Domain.Paused);
      Alcotest.(check bool) "populate" true
        (Xen.populate_memory xen ~domid = Ok ());
      Alcotest.(check bool) "load image" true
        (Xen.load_image xen ~domid ~size_mb:0.5 = Ok ());
      Alcotest.(check bool) "unpause" true (Xen.unpause xen ~domid = Ok ());
      Alcotest.(check bool) "running" true (Domain.is_running dom);
      (* Memory: 8 MB RAM plus hypervisor overhead. *)
      let mem = Xen.domain_mem_kb xen ~domid in
      Alcotest.(check bool)
        (Printf.sprintf "memory accounted (%d kb)" mem)
        true
        (mem >= 8 * 1024 && mem < 9 * 1024);
      Alcotest.(check bool) "destroy" true (Xen.destroy xen ~domid = Ok ());
      Alcotest.(check int) "memory released" 0
        (Xen.domain_mem_kb xen ~domid);
      Alcotest.(check bool) "gone" true (Xen.domain xen ~domid = None))

let test_xen_round_robin_cores =
  in_sim (fun () ->
      let xen = Xen.boot () in
      let cores =
        List.init 5 (fun i ->
            match
              Xen.create_domain xen
                ~name:(Printf.sprintf "g%d" i)
                ~vcpus:1 ~mem_mb:4.
            with
            | Ok d -> Domain.core d
            | Error _ -> Alcotest.fail "create failed")
      in
      (* 3 guest cores (1,2,3) assigned round-robin. *)
      Alcotest.(check (list int)) "round robin" [ 1; 2; 3; 1; 2 ] cores)

let test_xen_out_of_memory =
  in_sim (fun () ->
      (* Tiny host: 1 GB total, Dom0 512 MB, Xen 128 MB. *)
      let platform = { Params.xeon_e5_1630 with Params.ram_mb = 1024 } in
      let xen = Xen.boot ~platform ~dom0_mem_mb:512 () in
      let rec fill n =
        match Xen.create_domain xen ~name:(Printf.sprintf "f%d" n) ~vcpus:1
                ~mem_mb:64. with
        | Error Xen.ENOMEM -> n
        | Error _ -> Alcotest.fail "unexpected error"
        | Ok d -> (
            match Xen.populate_memory xen ~domid:(Domain.domid d) with
            | Ok () -> fill (n + 1)
            | Error Xen.ENOMEM -> n
            | Error _ -> Alcotest.fail "unexpected populate error")
      in
      let booted = fill 0 in
      (* ~384 MB free / 64 MB -> around 5-6 guests. *)
      Alcotest.(check bool)
        (Printf.sprintf "filled host with %d guests" booted)
        true
        (booted >= 4 && booted <= 7))

let test_xen_load_image_linear =
  in_sim (fun () ->
      let xen = Xen.boot () in
      let dom =
        match Xen.create_domain xen ~name:"t" ~vcpus:1 ~mem_mb:64. with
        | Ok d -> d
        | Error _ -> Alcotest.fail "create failed"
      in
      let domid = Domain.domid dom in
      let timed size_mb =
        let t0 = Engine.now () in
        ignore (Xen.load_image xen ~domid ~size_mb);
        Engine.now () -. t0
      in
      let t_small = timed 1. in
      let t_big = timed 100. in
      let ratio = t_big /. t_small in
      Alcotest.(check bool)
        (Printf.sprintf "image load linear in size (ratio %.1f)" ratio)
        true
        (ratio > 50. && ratio < 150.))

let test_xen_hypercall_counter =
  in_sim (fun () ->
      let xen = Xen.boot () in
      let before = Xen.hypercalls xen in
      ignore (Xen.create_domain xen ~name:"h" ~vcpus:1 ~mem_mb:4.);
      Alcotest.(check bool) "counted" true (Xen.hypercalls xen > before))

let test_xen_destroy_dom0_rejected =
  in_sim (fun () ->
      let xen = Xen.boot () in
      Alcotest.(check bool) "dom0 protected" true
        (Xen.destroy xen ~domid:0 = Error Xen.EINVAL))

let suites =
  [
    ( "hv.frames",
      [
        Alcotest.test_case "alloc/free" `Quick test_frames_alloc_free;
        Alcotest.test_case "rounding" `Quick test_frames_rounding;
        Alcotest.test_case "free_all" `Quick test_frames_free_all;
        Alcotest.test_case "over-free" `Quick test_frames_over_free;
        QCheck_alcotest.to_alcotest prop_frames_conservation;
      ] );
    ( "hv.evtchn",
      [
        Alcotest.test_case "lifecycle" `Quick test_evtchn_lifecycle;
        Alcotest.test_case "wrong domain" `Quick test_evtchn_wrong_domain;
        Alcotest.test_case "double bind" `Quick test_evtchn_double_bind;
        Alcotest.test_case "close all" `Quick test_evtchn_close_all;
      ] );
    ( "hv.gnttab",
      [
        Alcotest.test_case "grant/map/unmap" `Quick test_gnttab_flow;
        Alcotest.test_case "wrong grantee" `Quick test_gnttab_wrong_grantee;
        Alcotest.test_case "refcount" `Quick test_gnttab_refcount;
      ] );
    ( "hv.devpage",
      [
        Alcotest.test_case "flow" `Quick test_devpage_flow;
        Alcotest.test_case "replace/remove" `Quick
          test_devpage_replace_and_remove;
        Alcotest.test_case "no page" `Quick test_devpage_no_page;
      ] );
    ( "hv.xen",
      [
        Alcotest.test_case "boot" `Quick test_xen_boot;
        Alcotest.test_case "domain lifecycle" `Quick
          test_xen_domain_lifecycle;
        Alcotest.test_case "round-robin cores" `Quick
          test_xen_round_robin_cores;
        Alcotest.test_case "out of memory" `Quick test_xen_out_of_memory;
        Alcotest.test_case "image load linear" `Quick
          test_xen_load_image_linear;
        Alcotest.test_case "hypercall counter" `Quick
          test_xen_hypercall_counter;
        Alcotest.test_case "destroy dom0 rejected" `Quick
          test_xen_destroy_dom0_rejected;
      ] );
  ]
